//! Before/after harness for the SoA node layout + query-scratch change,
//! emitting machine-readable `BENCH_PR4.json`.
//!
//! Four hot-path entries, each measured as ns/op and allocations/op
//! under a counting global allocator:
//!
//! | entry | before (legacy AoS, allocating) | after (SoA + scratch) |
//! |---|---|---|
//! | `knn` | `LegacyTree::knn` (heap + `HashMap` per query) | `RTree::knn_in` |
//! | `tpnn` | `LegacyTree::tp_knn` (fresh queue per call) | `RTree::tp_knn_in` |
//! | `validity_region` | `LegacyTree::retrieve_influence_set` | `retrieve_influence_set_in` |
//! | `serve_batch` | sequential legacy kNN-with-validity batch | `answer_on_with` batch on one worker scratch |
//!
//! Both sides run identically shaped STR trees over the same items (see
//! `lbq_bench::legacy`), so the deltas isolate layout + allocation.
//!
//! Modes:
//!
//! * default (full): paper-scale dataset, asserts the validity-region
//!   path is ≥ 1.5× faster and that steady-state `knn_in` /
//!   `tp_nn_in` / `retrieve_influence_set_in` calls allocate nothing,
//!   writes `BENCH_PR4.json` in the CWD;
//! * `--quick`: ~10× smaller CI smoke — runs every entry and the
//!   zero-allocation assertions, skips the speedup assertion (timing on
//!   loaded CI boxes is noise), writes `target/BENCH_PR4.quick.json`;
//! * `--check <file>`: parses an existing report and asserts it carries
//!   all four entries with before/after numbers; no benchmarking.

use lbq_bench::jsonv;
use lbq_bench::legacy::LegacyTree;
use lbq_core::LbqServer;
use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig};
use lbq_serve::{answer_on_with, QueryReq};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::time::Instant;

/// A pass-through allocator that counts every allocation into the
/// `lbq_obs` bare-atomic hook. `realloc` counts as one allocation (it
/// may move), `dealloc` is free.
struct CountingAlloc;

// The workspace denies `unsafe_code`; a `#[global_allocator]` is the
// one place it cannot be avoided — the trait itself is unsafe. Scope
// the allowance to exactly this impl.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        lbq_obs::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        lbq_obs::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One before/after measurement.
struct Entry {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
    before_allocs: f64,
    after_allocs: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.before_ns / self.after_ns.max(1e-9)
    }
}

/// Times a before/after pair over `iters` iterations each and returns
/// `((before ns/op, before allocs/op), (after ns/op, after allocs/op))`.
///
/// The two sides run as **interleaved batches** (before, after, before,
/// after, …, five rounds) and each side reports its fastest batch: the
/// minimum is the standard noise-robust estimator (anything slower is
/// interference, never the code), and interleaving makes machine-load
/// drift hit both sides alike instead of skewing the ratio. Allocations
/// are exact and identical across batches, so they come from the last
/// round alone.
fn measure_pair<A, B>(
    iters: usize,
    mut before: impl FnMut(usize) -> A,
    mut after: impl FnMut(usize) -> B,
) -> ((f64, f64), (f64, f64)) {
    // Warm up: touch every code path and let scratch buffers grow.
    for i in 0..iters.min(16) {
        black_box(before(i));
        black_box(after(i));
    }
    let mut before_ns = f64::INFINITY;
    let mut after_ns = f64::INFINITY;
    let mut before_allocs = 0u64;
    let mut after_allocs = 0u64;
    for _ in 0..5 {
        let a0 = lbq_obs::alloc_count();
        let t = Instant::now();
        for i in 0..iters {
            black_box(before(i));
        }
        before_ns = before_ns.min(t.elapsed().as_secs_f64() * 1e9);
        before_allocs = lbq_obs::alloc_count() - a0;
        let a0 = lbq_obs::alloc_count();
        let t = Instant::now();
        for i in 0..iters {
            black_box(after(i));
        }
        after_ns = after_ns.min(t.elapsed().as_secs_f64() * 1e9);
        after_allocs = lbq_obs::alloc_count() - a0;
    }
    let per_op = |ns: f64, allocs: u64| (ns / iters as f64, allocs as f64 / iters as f64);
    (
        per_op(before_ns, before_allocs),
        per_op(after_ns, after_allocs),
    )
}

fn random_items(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|i| Item::new(Point::new(rng.gen_f64(), rng.gen_f64()), i as u64))
        .collect()
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(0.05 + 0.9 * rng.gen_f64(), 0.05 + 0.9 * rng.gen_f64()))
        .collect()
}

struct Report {
    mode: &'static str,
    n: usize,
    queries: usize,
    entries: Vec<Entry>,
    knn_in_steady_allocs: u64,
    tp_nn_in_steady_allocs: u64,
    validity_region_in_steady_allocs: u64,
}

fn run(quick: bool) -> Report {
    let (mut n, queries, batch) = if quick {
        (10_000, 64, 16)
    } else {
        (400_000, 256, 64)
    };
    // PR4_N overrides the dataset size (scaling experiments).
    if let Ok(env_n) = std::env::var("PR4_N") {
        if let Ok(v) = env_n.parse::<usize>() {
            n = v.max(1000);
        }
    }
    let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
    let config = RTreeConfig::paper();
    let items = random_items(n, 0xC0FFEE);
    println!(
        "pr4_bench: n={n}, queries={queries}, fanout={}",
        config.max_entries
    );

    let live = RTree::bulk_load(items.clone(), config);
    let legacy = LegacyTree::bulk_load(items, config);
    let server = LbqServer::new(
        RTree::bulk_load(random_items(n, 0xC0FFEE), config),
        universe,
    );
    let foci = random_points(queries, 7);
    let dirs: Vec<Vec2> = {
        let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(11);
        (0..queries)
            .map(|_| {
                let a = rng.gen_f64() * std::f64::consts::TAU;
                Vec2::new(a.cos(), a.sin())
            })
            .collect()
    };
    // Shared fixtures: each focus's NN (computed on the live tree; the
    // legacy test suite proves both trees agree) as the TPNN inner set.
    let mut scratch = QueryScratch::new();
    let inners: Vec<Item> = foci
        .iter()
        .map(|&q| live.knn_in(q, 1, &mut scratch)[0].0)
        .collect();

    let mut entries = Vec::new();

    // -- knn ----------------------------------------------------------
    let k = 10;
    let ((before_ns, before_allocs), (after_ns, after_allocs)) = measure_pair(
        queries,
        |i| legacy.knn(foci[i % queries], k).len(),
        |i| live.knn_in(foci[i % queries], k, &mut scratch).len(),
    );
    entries.push(Entry {
        name: "knn",
        before_ns,
        after_ns,
        before_allocs,
        after_allocs,
    });

    // -- tpnn ---------------------------------------------------------
    let t_max = 0.25;
    let ((before_ns, before_allocs), (after_ns, after_allocs)) = measure_pair(
        queries,
        |i| {
            let j = i % queries;
            legacy
                .tp_knn(foci[j], dirs[j], t_max, std::slice::from_ref(&inners[j]))
                .map(|e| e.object.id)
        },
        |i| {
            let j = i % queries;
            live.tp_nn_in(foci[j], dirs[j], t_max, inners[j], &mut scratch)
                .map(|e| e.object.id)
        },
    );
    entries.push(Entry {
        name: "tpnn",
        before_ns,
        after_ns,
        before_allocs,
        after_allocs,
    });

    // -- validity_region ----------------------------------------------
    let region_iters = queries.min(128);
    let ((before_ns, before_allocs), (after_ns, after_allocs)) = measure_pair(
        region_iters,
        |i| {
            let j = i % queries;
            legacy
                .retrieve_influence_set(foci[j], std::slice::from_ref(&inners[j]), universe)
                .2
        },
        |i| {
            let j = i % queries;
            lbq_core::retrieve_influence_set_in(
                &live,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1
        },
    );
    entries.push(Entry {
        name: "validity_region",
        before_ns,
        after_ns,
        before_allocs,
        after_allocs,
    });

    // -- serve_batch --------------------------------------------------
    // What one serve worker does for a batch of kNN-with-validity
    // requests: before = the legacy pipeline per request, after = the
    // engine miss path on the worker's thread-owned scratch. Pool
    // dispatch overhead is identical either way and excluded.
    let reqs: Vec<QueryReq> = (0..batch)
        .map(|i| QueryReq::knn(foci[i % queries], 4))
        .collect();
    let batch_iters = (queries / batch).max(4);
    let ((before_ns, before_allocs), (after_ns, after_allocs)) = measure_pair(
        batch_iters,
        |_| {
            let mut served = 0usize;
            for r in &reqs {
                if let QueryReq::Knn { q, k } = *r {
                    served += legacy.knn_with_validity(q, k, universe).0.len();
                }
            }
            served
        },
        |_| {
            let mut served = 0usize;
            for r in &reqs {
                served += answer_on_with(&server, r, &mut scratch).result_ids().len();
            }
            served
        },
    );
    entries.push(Entry {
        name: "serve_batch",
        before_ns,
        after_ns,
        before_allocs,
        after_allocs,
    });

    // -- steady-state zero-allocation proof ---------------------------
    // Warm the scratch on the exact call shapes first, then demand not
    // one allocation across a measured run.
    for j in 0..queries.min(32) {
        let _ = black_box(live.knn_in(foci[j], k, &mut scratch).len());
        let _ = black_box(live.tp_nn_in(foci[j], dirs[j], t_max, inners[j], &mut scratch));
    }
    let a0 = lbq_obs::alloc_count();
    for i in 0..200 {
        let j = i % queries;
        let _ = black_box(live.knn_in(foci[j], k, &mut scratch).len());
    }
    let knn_in_steady_allocs = lbq_obs::alloc_count() - a0;
    let a0 = lbq_obs::alloc_count();
    for i in 0..200 {
        let j = i % queries;
        let _ = black_box(live.tp_nn_in(foci[j], dirs[j], t_max, inners[j], &mut scratch));
    }
    let tp_nn_in_steady_allocs = lbq_obs::alloc_count() - a0;
    // The full region retrieval (TPNN chain + pair list + polygon
    // clipping) also runs entirely on the scratch.
    for j in 0..queries.min(16) {
        let _ = black_box(
            lbq_core::retrieve_influence_set_in(
                &live,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1,
        );
    }
    let a0 = lbq_obs::alloc_count();
    for i in 0..100 {
        let j = i % queries;
        let _ = black_box(
            lbq_core::retrieve_influence_set_in(
                &live,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1,
        );
    }
    let validity_region_in_steady_allocs = lbq_obs::alloc_count() - a0;
    lbq_obs::publish_alloc_gauge();

    Report {
        mode: if quick { "quick" } else { "full" },
        n,
        queries,
        entries,
        knn_in_steady_allocs,
        tp_nn_in_steady_allocs,
        validity_region_in_steady_allocs,
    }
}

fn render_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr4-soa-scratch\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!(
        "  \"dataset\": {{\"n\": {}, \"queries\": {}}},\n",
        r.n, r.queries
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in r.entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.3}, \"before_allocs\": {:.2}, \"after_allocs\": {:.2}}}{}\n",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup(),
            e.before_allocs,
            e.after_allocs,
            if i + 1 < r.entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"steady_state\": {{\"knn_in_allocs\": {}, \"tp_nn_in_allocs\": {}, \"validity_region_in_allocs\": {}}}\n",
        r.knn_in_steady_allocs, r.tp_nn_in_steady_allocs, r.validity_region_in_steady_allocs
    ));
    s.push_str("}\n");
    s
}

/// `--check`: the report must be valid JSON and carry all four hot-path
/// entries with before/after fields and the steady-state block.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    jsonv::validate(&text)?;
    for name in ["knn", "tpnn", "validity_region", "serve_batch"] {
        let key = format!("\"name\": \"{name}\"");
        let Some(at) = text.find(&key) else {
            return Err(format!("missing entry {name:?}"));
        };
        let rest = &text[at..text[at..].find('}').map_or(text.len(), |e| at + e)];
        for field in [
            "before_ns",
            "after_ns",
            "speedup",
            "before_allocs",
            "after_allocs",
        ] {
            if !rest.contains(field) {
                return Err(format!("entry {name:?} missing field {field:?}"));
            }
        }
    }
    for field in [
        "knn_in_allocs",
        "tp_nn_in_allocs",
        "validity_region_in_allocs",
    ] {
        if !text.contains(field) {
            return Err(format!("missing steady-state field {field:?}"));
        }
    }
    println!("pr4_bench --check {path}: ok (4 entries, steady-state block)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_PR4.json");
        if let Err(e) = check(path) {
            eprintln!("pr4_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let report = run(quick);

    for e in &report.entries {
        println!(
            "{:<18} before {:>10.0} ns/op ({:>7.1} allocs)   after {:>10.0} ns/op ({:>6.2} allocs)   {:>5.2}x",
            e.name, e.before_ns, e.before_allocs, e.after_ns, e.after_allocs, e.speedup()
        );
    }
    println!(
        "steady-state allocs: knn_in={} tp_nn_in={} validity_region_in={}",
        report.knn_in_steady_allocs,
        report.tp_nn_in_steady_allocs,
        report.validity_region_in_steady_allocs
    );

    assert_eq!(
        report.knn_in_steady_allocs, 0,
        "knn_in must be allocation-free after warm-up"
    );
    assert_eq!(
        report.tp_nn_in_steady_allocs, 0,
        "tp_nn_in must be allocation-free after warm-up"
    );
    assert_eq!(
        report.validity_region_in_steady_allocs, 0,
        "retrieve_influence_set_in must be allocation-free after warm-up"
    );
    if !quick {
        let region = report
            .entries
            .iter()
            .find(|e| e.name == "validity_region")
            .expect("region entry present");
        assert!(
            region.speedup() >= 1.5,
            "validity-region hot path must be >= 1.5x faster, got {:.2}x",
            region.speedup()
        );
    }

    let out = if quick {
        std::path::PathBuf::from("target/BENCH_PR4.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_PR4.json")
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let rendered = render_json(&report);
    jsonv::validate(&rendered).expect("harness emits valid JSON");
    std::fs::write(&out, rendered).expect("writing bench report");
    println!("wrote {}", out.display());
}
