//! Overhead + smoke harness for the production observability layer
//! (flight recorder, stage attribution, hot-tile heatmap, snapshot
//! exporter), emitting machine-readable `BENCH_PR7.json`.
//!
//! The contract under test: observability must be *free when off* and
//! cheap when on. Three measurement groups:
//!
//! | group | what |
//! |---|---|
//! | `serve` | engine `submit` ns/op with recording off vs armed, plus the off-path compared against the PR 5 `serve_batch` baseline (`vs_pr5 ≤ 1.03`) |
//! | `micro` | ns/op of the individual primitives: histogram record, disabled stage timer, disabled `record_query`, heatmap record, flight-recorder record |
//! | equivalence | obs-on responses bit-identical to obs-off |
//!
//! Modes:
//!
//! * default (full): paper-scale dataset; requires `BENCH_PR5.json` in
//!   the CWD (regenerate with `pr5_bench` on the same machine — ratios
//!   across machines are meaningless) and asserts the obs-off serve
//!   path is within 3% of its `serve_batch` "after" column; writes
//!   `BENCH_PR7.json`;
//! * `--quick`: ~10× smaller CI smoke, no baseline gate (CI timing is
//!   noise), writes `target/BENCH_PR7.quick.json`;
//! * `--check <file>`: parses an existing report and asserts the
//!   schema; no benchmarking;
//! * `--serve-smoke <snapshot.jsonl>`: runs a short recorded workload
//!   with the exporter armed, injects a slow query, then validates the
//!   snapshot stream — parseable JSONL, versioned header, per-stage
//!   histogram metrics, non-empty heatmap, ≥ 1 slow-query capture —
//!   and proves obs-on answers bit-identical to obs-off.

use lbq_bench::jsonv::{self, Json};
use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_obs::{QueryEvent, QueryKind, RecorderConfig, StageNanos};
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_serve::{CacheConfig, Engine, EngineConfig, QueryReq};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TILE: usize = 32;
const VS_PR5_MAX: f64 = 1.03;

fn random_items(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|i| Item::new(Point::new(rng.gen_f64(), rng.gen_f64()), i as u64))
        .collect()
}

/// Hotspot batches — the same motivating workload `pr5_bench` times, so
/// the `vs_pr5` ratio compares like against like.
fn hotspot_points(clusters: usize, per: usize, radius: f64, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    let mut out = Vec::with_capacity(clusters * per);
    for _ in 0..clusters {
        let c = Point::new(0.1 + 0.8 * rng.gen_f64(), 0.1 + 0.8 * rng.gen_f64());
        for _ in 0..per {
            out.push(Point::new(
                c.x + radius * (2.0 * rng.gen_f64() - 1.0),
                c.y + radius * (2.0 * rng.gen_f64() - 1.0),
            ));
        }
    }
    out
}

/// Fastest-of-five batches, ns per iteration (see `pr4_bench` for the
/// noise rationale).
fn measure<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> f64 {
    for i in 0..iters.min(16) {
        black_box(f(i));
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for i in 0..iters {
            black_box(f(i));
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best / iters as f64
}

struct MicroEntry {
    name: &'static str,
    ns_per_op: f64,
}

struct Report {
    mode: &'static str,
    n: usize,
    batch: usize,
    serve_off_ns: f64,
    serve_on_ns: f64,
    pr5_after_ns: Option<f64>,
    micro: Vec<MicroEntry>,
}

impl Report {
    fn on_over_off(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.serve_on_ns / self.serve_off_ns.max(1e-9)
    }

    fn vs_pr5(&self) -> Option<f64> {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.pr5_after_ns.map(|b| self.serve_off_ns / b.max(1e-9))
    }
}

/// Reads the `serve_batch` "after" column out of a `BENCH_PR5.json`.
fn pr5_serve_after(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = jsonv::parse(&text)?;
    v.get("entries")
        .and_then(Json::as_arr)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some("serve_batch"))
        })
        .and_then(|e| e.get("after_ns"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: no serve_batch entry with after_ns"))
}

fn run(quick: bool) -> Report {
    let (n, batch) = if quick {
        (10_000, 128)
    } else {
        (400_000, 1024)
    };
    let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
    let config = RTreeConfig::paper();
    let k = 10;
    println!("pr7_bench: n={n}, batch={batch}, tile={TILE}");

    // Same engine shape as pr5_bench's `serve_batch` "after" side:
    // repacked tree, Hilbert tiles, cache disabled (isolates dispatch +
    // traversal + instrumentation, not hit rates).
    let workers = std::thread::available_parallelism().map_or(2, |w| w.get().min(8));
    let engine = Engine::new(
        Arc::new(LbqServer::new(
            RTree::bulk_load_packed(random_items(n, 0xC0FFEE), config),
            universe,
        )),
        EngineConfig {
            workers,
            cache: CacheConfig::disabled(),
            tile_size: TILE,
            hot: lbq_serve::HotConfig::disabled(),
            ..EngineConfig::default()
        },
    );
    let reqs: Vec<QueryReq> = hotspot_points(batch / TILE, TILE, 0.002, 13)
        .into_iter()
        .map(|p| QueryReq::knn(p, k))
        .collect();

    // -- serve: recording off (the always-on production default) -------
    assert!(!lbq_obs::recording(), "recording must start disabled");
    let baseline = engine.submit(reqs.clone());
    let serve_off_ns = measure(8, |_| engine.submit(reqs.clone()).len());

    // -- serve: recording armed ----------------------------------------
    lbq_obs::init_recorder(RecorderConfig::default());
    let recorded = engine.submit(reqs.clone());
    // Equivalence: arming recording changes no answer byte.
    assert_eq!(baseline.len(), recorded.len());
    for (i, (b, r)) in baseline.iter().zip(&recorded).enumerate() {
        assert_eq!(
            format!("{:?}", b.answer),
            format!("{:?}", r.answer),
            "request {i}: recorded response diverged from baseline"
        );
    }
    let serve_on_ns = measure(8, |_| engine.submit(reqs.clone()).len());
    lbq_obs::set_recording(false);

    // -- micro primitives ----------------------------------------------
    let mut micro = Vec::new();
    let iters = 1_000_000usize;

    let h = lbq_obs::histogram("pr7-bench-histogram");
    micro.push(MicroEntry {
        name: "histogram_record",
        ns_per_op: measure(iters, |i| h.record_ns(i as u64)),
    });
    micro.push(MicroEntry {
        name: "stage_timer_disabled",
        ns_per_op: measure(iters, |_| {
            let _t = lbq_obs::stage_timer(lbq_obs::Stage::TreeKnn);
        }),
    });
    let ev = QueryEvent {
        query_id: 1,
        kind: QueryKind::Knn,
        k: 10,
        tier: lbq_obs::CacheTier::Tree,
        tile: 7,
        latency_ns: 1_000,
        node_accesses: 12,
        page_accesses: 3,
        stages: StageNanos::default(),
    };
    micro.push(MicroEntry {
        name: "record_query_disabled",
        ns_per_op: measure(iters, |_| lbq_obs::record_query(&ev)),
    });
    let heat = lbq_obs::heatmap("pr7-bench-heat");
    micro.push(MicroEntry {
        name: "heatmap_record",
        ns_per_op: measure(iters, |i| heat.record(i as u32, 100)),
    });
    let rec = lbq_obs::recorder().expect("recorder armed above");
    micro.push(MicroEntry {
        name: "recorder_record",
        ns_per_op: measure(iters, |i| {
            rec.record(&QueryEvent {
                query_id: i as u64,
                ..ev
            })
        }),
    });

    Report {
        mode: if quick { "quick" } else { "full" },
        n,
        batch,
        serve_off_ns,
        serve_on_ns,
        // Quick mode runs a 10× smaller dataset than the PR 5 full
        // report — the ratio would compare different workloads.
        pr5_after_ns: if quick {
            None
        } else {
            pr5_serve_after("BENCH_PR5.json").ok()
        },
        micro,
    }
}

fn render_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr7-observability\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!(
        "  \"dataset\": {{\"n\": {}, \"batch\": {}, \"tile\": {}}},\n",
        r.n, r.batch, TILE
    ));
    s.push_str(&format!(
        "  \"serve\": {{\"obs_off_ns\": {:.1}, \"obs_on_ns\": {:.1}, \"on_over_off\": {:.4}, ",
        r.serve_off_ns,
        r.serve_on_ns,
        r.on_over_off()
    ));
    match (r.pr5_after_ns, r.vs_pr5()) {
        (Some(b), Some(ratio)) => s.push_str(&format!(
            "\"pr5_serve_after_ns\": {b:.1}, \"vs_pr5\": {ratio:.4}}},\n"
        )),
        _ => s.push_str("\"pr5_serve_after_ns\": null, \"vs_pr5\": null},\n"),
    }
    s.push_str("  \"micro\": [\n");
    for (i, e) in r.micro.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}}}{}\n",
            e.name,
            e.ns_per_op,
            if i + 1 < r.micro.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"gate\": {{\"vs_pr5_max\": {VS_PR5_MAX}, \"enforced\": {}}},\n",
        r.mode == "full"
    ));
    s.push_str("  \"equivalence\": {\"obs_on_vs_off\": \"bit-identical\"}\n");
    s.push_str("}\n");
    s
}

/// `--check`: the report must be valid JSON with the serve block, all
/// five micro entries, and the equivalence stamp.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = jsonv::parse(&text)?;
    if v.get("bench").and_then(Json::as_str) != Some("pr7-observability") {
        return Err("not a pr7-observability report".into());
    }
    let serve = v.get("serve").ok_or("missing serve block")?;
    for field in ["obs_off_ns", "obs_on_ns", "on_over_off"] {
        if serve.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("serve block missing numeric field {field:?}"));
        }
    }
    let micro = v
        .get("micro")
        .and_then(Json::as_arr)
        .ok_or("missing micro array")?;
    for name in [
        "histogram_record",
        "stage_timer_disabled",
        "record_query_disabled",
        "heatmap_record",
        "recorder_record",
    ] {
        if !micro
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some(name))
        {
            return Err(format!("missing micro entry {name:?}"));
        }
    }
    if v.get("equivalence")
        .and_then(|e| e.get("obs_on_vs_off"))
        .is_none()
    {
        return Err("missing equivalence stamp".into());
    }
    println!("pr7_bench --check {path}: ok (serve block, 5 micro entries)");
    Ok(())
}

/// `--serve-smoke`: exporter + recorder end to end — see the module
/// docs. Panics (non-zero exit) on any violated expectation.
fn serve_smoke(snapshot_path: &str) {
    let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load_packed(random_items(20_000, 0xFEED), RTreeConfig::paper()),
        universe,
    ));
    let reqs: Vec<QueryReq> = hotspot_points(8, TILE, 0.002, 29)
        .into_iter()
        .map(|p| QueryReq::knn(p, 8))
        .collect();

    // Obs-off baseline on an identical engine (cache disabled keeps
    // every answer deterministic for the byte comparison).
    let mk = |server: &Arc<LbqServer>| {
        Engine::new(
            Arc::clone(server),
            EngineConfig {
                workers: 4,
                cache: CacheConfig::disabled(),
                tile_size: TILE,
                hot: lbq_serve::HotConfig::disabled(),
                ..EngineConfig::default()
            },
        )
    };
    let baseline: Vec<String> = mk(&server)
        .submit(reqs.clone())
        .iter()
        .map(|r| format!("{:?}", r.answer))
        .collect();

    // Arm recording + exporter. An aggressive slow config so the
    // injected slow query is captured deterministically: threshold re-
    // arms right at the rolling p99 after a short warmup.
    lbq_obs::init_recorder(RecorderConfig {
        capacity: 512,
        slow_min_samples: 64,
        slow_multiplier: 1,
        slow_floor_ns: 0,
    });
    let exporter = lbq_obs::install_exporter(
        std::path::Path::new(snapshot_path),
        Duration::from_millis(40),
    )
    .expect("open snapshot sink");

    let engine = mk(&server);
    // Warmup: enough cheap queries to pass slow_min_samples and settle
    // the p99 threshold.
    for _ in 0..4 {
        let got: Vec<String> = engine
            .submit(reqs.clone())
            .iter()
            .map(|r| format!("{:?}", r.answer))
            .collect();
        assert_eq!(baseline, got, "recorded answers diverged from obs-off");
    }
    // The injected slow query: a k three orders of magnitude above the
    // warmup workload's — its latency dwarfs the cheap-query p99.
    let slow = engine.submit(vec![QueryReq::knn(Point::new(0.5, 0.5), 4_000)]);
    assert_eq!(slow.len(), 1);
    // Let at least two export periods elapse while queries still flow.
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(100) {
        black_box(engine.submit(reqs[..TILE].to_vec()));
    }
    let rec = lbq_obs::recorder().expect("recorder armed");
    let stats = rec.stats();
    assert!(
        stats.slow_captured >= 1,
        "injected slow query was not captured (threshold {} ns, p99 {} ns)",
        stats.threshold_ns,
        stats.latency.p99_ns
    );
    drop(exporter); // final snapshot flushes on shutdown

    // -- validate the snapshot stream ----------------------------------
    let text = std::fs::read_to_string(snapshot_path).expect("read snapshot file");
    let mut snapshots = 0u64;
    let mut trailers = 0u64;
    let mut stage_metrics = 0u64;
    let mut heat_tiles = 0u64;
    let mut recorder_lines = 0u64;
    let mut slow_lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let v = jsonv::parse(line)
            .unwrap_or_else(|e| panic!("snapshot line {} unparseable: {e}", lineno + 1));
        match v.get("type").and_then(Json::as_str) {
            Some("snapshot") => {
                snapshots += 1;
                assert_eq!(
                    v.get("version").and_then(Json::as_f64),
                    Some(lbq_obs::SNAPSHOT_VERSION as f64),
                    "line {}: bad snapshot version",
                    lineno + 1
                );
                assert!(v.get("unix-ms").and_then(Json::as_f64).is_some());
            }
            Some("metric") => {
                let name = v.get("name").and_then(Json::as_str).unwrap_or_default();
                if name.starts_with("stage-") {
                    stage_metrics += 1;
                    assert!(v.get("count").and_then(Json::as_f64).is_some());
                    assert!(v.get("p99-ns").and_then(Json::as_f64).is_some());
                }
            }
            Some("heatmap") => {
                let tiles = v.get("tiles").and_then(Json::as_arr).map_or(0, <[_]>::len);
                heat_tiles += tiles as u64;
            }
            Some("recorder") => {
                recorder_lines += 1;
                assert!(v.get("slow-captured").and_then(Json::as_f64).is_some());
            }
            Some("slow-query") => {
                slow_lines += 1;
                assert!(v.get("latency-ns").and_then(Json::as_f64).is_some());
            }
            Some("snapshot-end") => trailers += 1,
            other => panic!("line {}: unknown record type {other:?}", lineno + 1),
        }
    }
    assert!(
        snapshots >= 2,
        "expected periodic snapshots, got {snapshots}"
    );
    assert_eq!(snapshots, trailers, "unbalanced snapshot/trailer lines");
    assert!(
        stage_metrics >= 1,
        "no per-stage histogram metrics exported"
    );
    assert!(heat_tiles >= 1, "exported heatmap is empty");
    assert!(recorder_lines >= 1, "no recorder stats exported");
    assert!(slow_lines >= 1, "no slow-query capture exported");
    println!(
        "pr7_bench --serve-smoke: ok ({snapshots} snapshots, {stage_metrics} stage metrics, \
         {heat_tiles} heat tiles, {} slow captures)",
        stats.slow_captured
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_PR7.json");
        if let Err(e) = check(path) {
            eprintln!("pr7_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--serve-smoke") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("target/pr7_smoke.jsonl");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        serve_smoke(path);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let report = run(quick);

    println!(
        "serve_batch        obs-off {:>10.0} ns/op   obs-on {:>10.0} ns/op   on/off {:.3}",
        report.serve_off_ns,
        report.serve_on_ns,
        report.on_over_off()
    );
    for e in &report.micro {
        println!("{:<22} {:>8.2} ns/op", e.name, e.ns_per_op);
    }
    match (report.pr5_after_ns, report.vs_pr5()) {
        (Some(b), Some(ratio)) => {
            println!(
                "vs_pr5: obs-off {:.0} / pr5 {b:.0} = {ratio:.4}",
                report.serve_off_ns
            );
            if !quick {
                assert!(
                    ratio <= VS_PR5_MAX,
                    "obs-disabled serve path regressed {ratio:.4}x vs PR 5 baseline \
                     (max {VS_PR5_MAX}); regenerate BENCH_PR5.json on this machine first"
                );
            }
        }
        _ if !quick => {
            eprintln!(
                "pr7_bench: BENCH_PR5.json not found in CWD — run pr5_bench first \
                 so the 3% overhead gate has a same-machine baseline"
            );
            std::process::exit(1);
        }
        _ => println!("vs_pr5: skipped (no BENCH_PR5.json; quick mode)"),
    }

    let out = if quick {
        std::path::PathBuf::from("target/BENCH_PR7.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_PR7.json")
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let rendered = render_json(&report);
    jsonv::validate(&rendered).expect("harness emits valid JSON");
    std::fs::write(&out, rendered).expect("writing bench report");
    println!("wrote {}", out.display());
}
