//! Thread-sweep throughput bench for the `lbq-serve` engine.
//!
//! Sweeps worker counts and batch sizes over the paper's uniform
//! 10k-point workload and reports, per configuration: batch throughput
//! (queries/second), mean per-query service latency, and NA/PA per
//! answered query (aggregate tree-counter delta divided by the queries
//! that reached the tree). A final section turns the validity-region
//! cache on to show the hit-rate amortization on a focus-reuse
//! workload.
//!
//! ```text
//! cargo run --release -p lbq-bench --bin serve_sweep            # full sweep
//! cargo run --release -p lbq-bench --bin serve_sweep -- --quick # CI smoke
//! ```
//!
//! Throughput scales with workers up to the machine's core count;
//! on a single-core container every configuration collapses to the
//! 1-thread rate (the sweep still exercises the full concurrent path).

use lbq_core::LbqServer;
use lbq_data::uniform;
use lbq_geom::{Point, Rect};
use lbq_obs::ProfileTable;
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{CacheConfig, Engine, EngineConfig, QueryReq};
use std::sync::Arc;
use std::time::Instant;

fn workload(count: usize, seed: u64) -> Vec<QueryReq> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            if rng.gen_bool(0.5) {
                QueryReq::knn(p, 1 + (rng.gen_range(0.0..4.0) as usize))
            } else {
                QueryReq::window(p, rng.gen_range(0.01..0.03), rng.gen_range(0.01..0.03))
            }
        })
        .collect()
}

struct RunStats {
    qps: f64,
    mean_latency_ns: u64,
    na_per_query: f64,
    pa_per_query: f64,
    hit_rate: f64,
}

/// Streams `reqs` through the engine in `batch`-sized submits and
/// aggregates the run.
fn run(engine: &Engine, reqs: &[QueryReq], batch: usize) -> RunStats {
    let tree = engine.server().tree();
    let before = tree.stats();
    let start = Instant::now();
    let mut latency_total = 0u64;
    let mut hits = 0u64;
    for chunk in reqs.chunks(batch) {
        for resp in engine.submit(chunk.to_vec()) {
            latency_total += resp.latency_ns;
            hits += u64::from(resp.from_cache);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let cost = tree.stats().delta_since(before);
    let n = reqs.len() as f64;
    let tree_queries = (reqs.len() as u64 - hits).max(1) as f64;
    RunStats {
        qps: n / elapsed,
        mean_latency_ns: latency_total / reqs.len() as u64,
        na_per_query: cost.node_accesses as f64 / tree_queries,
        pa_per_query: cost.page_faults as f64 / tree_queries,
        hit_rate: hits as f64 / n,
    }
}

fn main() {
    lbq_obs::install_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (queries, thread_sweep, batch_sweep): (usize, &[usize], &[usize]) = if quick {
        (2_000, &[1, 2], &[64])
    } else {
        (20_000, &[1, 2, 4, 8], &[32, 256, 2048])
    };

    let data = uniform(10_000, Rect::new(0.0, 0.0, 1.0, 1.0), 42);
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    ));
    println!(
        "dataset: {} | {} queries/run | available parallelism: {}\n",
        data.name,
        queries,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
    let reqs = workload(queries, 7);

    let mut table = ProfileTable::new(
        "serve sweep (cache off)",
        &["threads", "batch", "q/s", "mean-lat", "na/q", "pa/q"],
    );
    let mut baseline_qps = None;
    for &threads in thread_sweep {
        for &batch in batch_sweep {
            let engine = Engine::new(
                Arc::clone(&server),
                EngineConfig {
                    workers: threads,
                    cache: CacheConfig::disabled(),
                    hot: lbq_serve::HotConfig::disabled(),
                    ..EngineConfig::default()
                },
            );
            let s = run(&engine, &reqs, batch);
            if threads == 1 && baseline_qps.is_none() {
                baseline_qps = Some(s.qps);
            }
            table.row(&[
                threads.to_string(),
                batch.to_string(),
                format!("{:.0}", s.qps),
                lbq_obs::fmt_ns(s.mean_latency_ns),
                format!("{:.1}", s.na_per_query),
                format!("{:.1}", s.pa_per_query),
            ]);
        }
    }
    table.print();
    println!();

    // Cache section: a focus-reuse workload (each focus drawn from a
    // small pool, as co-located clients produce) with the cache on.
    let mut rng = Xoshiro256ss::seed_from_u64(99);
    let pool: Vec<QueryReq> = workload(queries / 10, 13);
    let reuse: Vec<QueryReq> = (0..queries)
        .map(|_| pool[rng.gen_range(0.0..pool.len() as f64) as usize])
        .collect();
    let mut cached = ProfileTable::new(
        "serve sweep (region cache on, focus-reuse workload)",
        &["threads", "q/s", "hit-rate", "na/q"],
    );
    for &threads in thread_sweep {
        let engine = Engine::new(Arc::clone(&server), EngineConfig::with_workers(threads));
        let s = run(&engine, &reuse, *batch_sweep.last().unwrap_or(&256));
        cached.row(&[
            threads.to_string(),
            format!("{:.0}", s.qps),
            format!("{:.1}%", s.hit_rate * 100.0),
            format!("{:.1}", s.na_per_query),
        ]);
    }
    cached.print();

    if let Some(&max_threads) = thread_sweep.last() {
        println!(
            "\nbaseline 1-thread throughput {:.0} q/s; sweep peaked at {} threads \
             (scaling requires {} cores — see table).",
            baseline_qps.unwrap_or(0.0),
            max_threads,
            max_threads
        );
    }
}
