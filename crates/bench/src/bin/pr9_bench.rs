//! Hot-tile Voronoi fast-path harness, emitting machine-readable
//! `BENCH_PR9.json`.
//!
//! The contract under test: repeat kNN traffic into promoted tiles is
//! answered by point location into lazily materialized order-k cells
//! **at least 1.5× faster** than the full kNN → TPNN → clip pipeline,
//! while cold traffic pays nothing measurable for the tier's
//! existence. Three measurement groups:
//!
//! | group | what |
//! |---|---|
//! | `hot` | steady-state hotspot batches, hot tier on vs off (`speedup ≥ 1.5`), plus the promoted-tile hit share |
//! | `cold` | a uniform never-promoting stream on a hot-enabled vs hot-disabled engine (`cold_overhead ≤ 1.05`), and the hot-disabled hotspot measurement against the PR 7 obs-off baseline — the identical workload on the identical engine shape (`vs_pr7 ≤ 1.03`) |
//! | equivalence | every hot-engine answer carries the same result-id set as the on-line construction (anchored answers re-focus the query, so bytes are compared per tier in `loopback_fleet`, ids here) |
//!
//! Modes:
//!
//! * default (full): paper-scale dataset; requires `BENCH_PR7.json` in
//!   the CWD (regenerate with `pr7_bench` on the same machine — ratios
//!   across machines are meaningless), enforces all three gates and
//!   writes `BENCH_PR9.json`;
//! * `--quick`: ~10× smaller CI smoke, no gates (CI timing is noise),
//!   writes `target/BENCH_PR9.quick.json`;
//! * `--check <file>`: parses an existing report and asserts the
//!   schema; no benchmarking.

use lbq_bench::jsonv::{self, Json};
use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, CacheTier, Engine, EngineConfig, HotConfig, QueryReq};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const TILE: usize = 32;
const K: usize = 10;
const SPEEDUP_MIN: f64 = 1.5;
const COLD_OVERHEAD_MAX: f64 = 1.05;
const VS_PR7_MAX: f64 = 1.03;

fn random_items(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|i| Item::new(Point::new(rng.gen_f64(), rng.gen_f64()), i as u64))
        .collect()
}

/// The same hotspot shape `pr5_bench`/`pr7_bench` time — clustered
/// batches are both the grouping optimization's and the hot tier's
/// motivating workload, so the ratios compare like against like.
fn hotspot_points(clusters: usize, per: usize, radius: f64, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    let mut out = Vec::with_capacity(clusters * per);
    for _ in 0..clusters {
        let c = Point::new(0.1 + 0.8 * rng.gen_f64(), 0.1 + 0.8 * rng.gen_f64());
        for _ in 0..per {
            out.push(Point::new(
                c.x + radius * (2.0 * rng.gen_f64() - 1.0),
                c.y + radius * (2.0 * rng.gen_f64() - 1.0),
            ));
        }
    }
    out
}

fn uniform_points(count: usize, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..count)
        .map(|_| Point::new(rng.gen_f64(), rng.gen_f64()))
        .collect()
}

/// Fastest-of-five batches, ns per iteration (see `pr4_bench` for the
/// noise rationale).
fn measure<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> f64 {
    for i in 0..iters.min(16) {
        black_box(f(i));
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for i in 0..iters {
            black_box(f(i));
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best / iters as f64
}

struct Report {
    mode: &'static str,
    n: usize,
    batch: usize,
    clusters: usize,
    hot_on_ns: f64,
    hot_off_ns: f64,
    hit_share: f64,
    promoted_tiles: usize,
    cells: u64,
    hot_hits: u64,
    uniform_on_ns: f64,
    uniform_off_ns: f64,
    pr7_obs_off_ns: Option<f64>,
}

impl Report {
    fn speedup(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.hot_off_ns / self.hot_on_ns.max(1e-9)
    }

    fn cold_overhead(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.uniform_on_ns / self.uniform_off_ns.max(1e-9)
    }

    /// The cold-pipeline regression check: `hot_off_ns` re-measures the
    /// exact workload `pr7_bench` timed for `obs_off_ns` (same dataset
    /// seed, same hotspot batches, same engine shape), so the ratio is
    /// like-for-like. The *uniform* measurements are not comparable to
    /// the PR 7 baseline — scattered batches defeat the grouping
    /// optimization and cost ~2.7× more per batch by design.
    fn vs_pr7(&self) -> Option<f64> {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.pr7_obs_off_ns.map(|b| self.hot_off_ns / b.max(1e-9))
    }
}

/// Reads the serve `obs_off_ns` out of a `BENCH_PR7.json`.
fn pr7_obs_off(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = jsonv::parse(&text)?;
    v.get("serve")
        .and_then(|s| s.get("obs_off_ns"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: no serve.obs_off_ns"))
}

fn run(quick: bool) -> Report {
    let (n, batch) = if quick {
        (10_000, 128)
    } else {
        (400_000, 1024)
    };
    let clusters = batch / TILE;
    let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
    println!("pr9_bench: n={n}, batch={batch}, clusters={clusters}, k={K}");

    let server = Arc::new(LbqServer::new(
        RTree::bulk_load_packed(random_items(n, 0xC0FFEE), RTreeConfig::paper()),
        universe,
    ));
    // Same engine shape as pr7_bench's obs-off side (repacked tree,
    // Hilbert tiles, region cache disabled so the comparison isolates
    // the hot tier, not cache hit rates), once per hot setting.
    let workers = std::thread::available_parallelism().map_or(2, |w| w.get().min(8));
    let mk = |hot: HotConfig| {
        Engine::new(
            Arc::clone(&server),
            EngineConfig {
                workers,
                cache: CacheConfig::disabled(),
                tile_size: TILE,
                hot,
                ..EngineConfig::default()
            },
        )
    };
    // Quick mode's 10k-site tree has an 11th-NN radius wider than the
    // default fetch apron — soundness would correctly refuse to serve.
    // A wider margin keeps the fast path exercised; full mode runs the
    // production default.
    let hot_cfg = HotConfig {
        max_tiles: 128,
        margin: if quick {
            2.0
        } else {
            HotConfig::default().margin
        },
        ..HotConfig::default()
    };
    let cold_engine = mk(HotConfig::disabled());
    let hot_engine = mk(hot_cfg);

    let reqs: Vec<QueryReq> = hotspot_points(clusters, TILE, 0.002, 13)
        .into_iter()
        .map(|p| QueryReq::knn(p, K))
        .collect();

    // -- equivalence + warmup ------------------------------------------
    // Repeat batches drive promotion (traffic crosses `promote_after`)
    // and then memoization (each cold miss on a promoted tile parks its
    // fresh answer in the tile). Every response along the way must
    // carry the on-line result set.
    let baseline: Vec<Vec<u64>> = reqs
        .iter()
        .map(|r| answer_on(&server, r).result_ids())
        .collect();
    let mut last_hot = 0u64;
    for round in 0..12 {
        let resps = hot_engine.submit(reqs.clone());
        last_hot = 0;
        for (i, resp) in resps.iter().enumerate() {
            assert_eq!(
                resp.answer.result_ids(),
                baseline[i],
                "round {round}, request {i}: hot-engine answer diverged \
                 from on-line construction (tier {:?})",
                resp.tier,
            );
            if resp.tier == CacheTier::HotVoronoi {
                last_hot += 1;
            }
        }
    }
    let stats = hot_engine.hot_stats();
    let hit_share = last_hot as f64 / reqs.len() as f64;
    println!(
        "warmup: {} tiles promoted, {} cells, steady-state hit share {:.1}%",
        stats.hot_tiles,
        stats.cells,
        hit_share * 100.0,
    );
    assert!(
        stats.hits > 0 && last_hot > 0,
        "hotspot workload never hit the hot tier (promotions {}, hits {})",
        stats.promotions,
        stats.hits,
    );

    // -- hot: steady-state hotspot batches, tier on vs off -------------
    let hot_on_ns = measure(8, |_| hot_engine.submit(reqs.clone()).len());
    let hot_off_ns = measure(8, |_| cold_engine.submit(reqs.clone()).len());

    // -- cold: a uniform stream never crosses the promotion threshold --
    // so this measures pure probe overhead: tile-of + one counter bump
    // per kNN request. Each measurement round submits a *distinct*
    // batch (resubmitting one fixed batch would concentrate repeat
    // traffic on its tiles and eventually promote them).
    let rounds: Vec<Vec<QueryReq>> = (0..64)
        .map(|r| {
            uniform_points(batch, 31 + r)
                .into_iter()
                .map(|p| QueryReq::knn(p, K))
                .collect()
        })
        .collect();
    let uniform_engine = mk(hot_cfg);
    let uniform_on_ns = measure(8, |i| uniform_engine.submit(rounds[i % 64].clone()).len());
    let uniform_off_ns = measure(8, |i| cold_engine.submit(rounds[i % 64].clone()).len());
    assert_eq!(
        uniform_engine.hot_stats().promotions,
        0,
        "uniform stream unexpectedly promoted a tile — cold overhead \
         measurement is contaminated",
    );

    let stats = hot_engine.hot_stats();
    Report {
        mode: if quick { "quick" } else { "full" },
        n,
        batch,
        clusters,
        hot_on_ns,
        hot_off_ns,
        hit_share,
        promoted_tiles: stats.hot_tiles,
        cells: stats.cells,
        hot_hits: stats.hits,
        uniform_on_ns,
        uniform_off_ns,
        // Quick mode runs a 10× smaller dataset than the PR 7 full
        // report — the ratio would compare different workloads.
        pr7_obs_off_ns: if quick {
            None
        } else {
            pr7_obs_off("BENCH_PR7.json").ok()
        },
    }
}

fn render_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr9-hot-voronoi\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!(
        "  \"dataset\": {{\"n\": {}, \"batch\": {}, \"tile\": {}, \"clusters\": {}, \"k\": {}}},\n",
        r.n, r.batch, TILE, r.clusters, K
    ));
    s.push_str(&format!(
        "  \"hot\": {{\"hot_on_ns\": {:.1}, \"hot_off_ns\": {:.1}, \"speedup\": {:.4}, \
         \"hit_share\": {:.4}, \"promoted_tiles\": {}, \"cells\": {}}},\n",
        r.hot_on_ns,
        r.hot_off_ns,
        r.speedup(),
        r.hit_share,
        r.promoted_tiles,
        r.cells
    ));
    s.push_str(&format!(
        "  \"cold\": {{\"uniform_hot_on_ns\": {:.1}, \"uniform_hot_off_ns\": {:.1}, \
         \"cold_overhead\": {:.4}, ",
        r.uniform_on_ns,
        r.uniform_off_ns,
        r.cold_overhead()
    ));
    match (r.pr7_obs_off_ns, r.vs_pr7()) {
        (Some(b), Some(ratio)) => s.push_str(&format!(
            "\"pr7_obs_off_ns\": {b:.1}, \"vs_pr7\": {ratio:.4}}},\n"
        )),
        _ => s.push_str("\"pr7_obs_off_ns\": null, \"vs_pr7\": null},\n"),
    }
    s.push_str(&format!(
        "  \"gate\": {{\"speedup_min\": {SPEEDUP_MIN}, \"cold_overhead_max\": {COLD_OVERHEAD_MAX}, \
         \"vs_pr7_max\": {VS_PR7_MAX}, \"enforced\": {}}},\n",
        r.mode == "full"
    ));
    s.push_str(&format!(
        "  \"equivalence\": {{\"hot_vs_online\": \"result-set-identical\", \"hot_hits\": {}}}\n",
        r.hot_hits
    ));
    s.push_str("}\n");
    s
}

/// `--check`: the report must be valid JSON with the hot and cold
/// blocks, the gate thresholds, and the equivalence stamp.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = jsonv::parse(&text)?;
    if v.get("bench").and_then(Json::as_str) != Some("pr9-hot-voronoi") {
        return Err("not a pr9-hot-voronoi report".into());
    }
    let hot = v.get("hot").ok_or("missing hot block")?;
    for field in ["hot_on_ns", "hot_off_ns", "speedup", "hit_share"] {
        if hot.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("hot block missing numeric field {field:?}"));
        }
    }
    let cold = v.get("cold").ok_or("missing cold block")?;
    for field in ["uniform_hot_on_ns", "uniform_hot_off_ns", "cold_overhead"] {
        if cold.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("cold block missing numeric field {field:?}"));
        }
    }
    if v.get("gate")
        .and_then(|g| g.get("speedup_min"))
        .and_then(Json::as_f64)
        .is_none()
    {
        return Err("missing gate.speedup_min".into());
    }
    match v
        .get("equivalence")
        .and_then(|e| e.get("hot_vs_online"))
        .and_then(Json::as_str)
    {
        Some("result-set-identical") => {}
        other => return Err(format!("bad equivalence stamp {other:?}")),
    }
    println!("pr9_bench --check {path}: ok (hot + cold blocks, gates, equivalence stamp)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_PR9.json");
        if let Err(e) = check(path) {
            eprintln!("pr9_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let report = run(quick);

    let per_query = |ns: f64| ns / report.batch as f64;
    println!(
        "hotspot batch      hot-on {:>10.0} ns/op ({:>7.0} ns/q)   hot-off {:>10.0} ns/op \
         ({:>7.0} ns/q)   speedup {:.2}x",
        report.hot_on_ns,
        per_query(report.hot_on_ns),
        report.hot_off_ns,
        per_query(report.hot_off_ns),
        report.speedup()
    );
    println!(
        "uniform batch      hot-on {:>10.0} ns/op   hot-off {:>10.0} ns/op   overhead {:.4}",
        report.uniform_on_ns,
        report.uniform_off_ns,
        report.cold_overhead()
    );
    match (report.pr7_obs_off_ns, report.vs_pr7()) {
        (Some(b), Some(ratio)) => {
            println!(
                "vs_pr7: hotspot hot-off {:.0} / pr7 obs-off {b:.0} = {ratio:.4}",
                report.hot_off_ns
            );
            if !quick {
                assert!(
                    ratio <= VS_PR7_MAX,
                    "cold serve path regressed {ratio:.4}x vs PR 7 baseline \
                     (max {VS_PR7_MAX}); regenerate BENCH_PR7.json on this machine first"
                );
            }
        }
        _ if !quick => {
            eprintln!(
                "pr9_bench: BENCH_PR7.json not found in CWD — run pr7_bench first \
                 so the 3% cold-regression gate has a same-machine baseline"
            );
            std::process::exit(1);
        }
        _ => println!("vs_pr7: skipped (no BENCH_PR7.json; quick mode)"),
    }
    if !quick {
        assert!(
            report.speedup() >= SPEEDUP_MIN,
            "hot-tile fast path delivered only {:.2}x (gate {SPEEDUP_MIN}x)",
            report.speedup()
        );
        assert!(
            report.cold_overhead() <= COLD_OVERHEAD_MAX,
            "hot tier slows uniform cold traffic {:.4}x (max {COLD_OVERHEAD_MAX})",
            report.cold_overhead()
        );
    }

    let out = if quick {
        std::path::PathBuf::from("target/BENCH_PR9.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_PR9.json")
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let rendered = render_json(&report);
    jsonv::validate(&rendered).expect("harness emits valid JSON");
    std::fs::write(&out, rendered).expect("writing bench report");
    println!("wrote {}", out.display());
}
