//! Loopback fleet harness for the network serving stack
//! (`lbq-proto` + `lbq-net`), emitting machine-readable
//! `BENCH_PR8.json`.
//!
//! The contract under test: a response served over TCP is **byte
//! identical** to the in-process encoding of the baseline answer —
//! `encode_query_response(request_id, resp)` is a pure function of the
//! request (cache disabled, stages unrecorded, `query_id` engine-
//! assigned), so the socket adds transport and nothing else.
//!
//! The harness binds a loopback server, drives a fleet of pipelined
//! client connections through real sockets, verifies every response
//! byte-for-byte against [`lbq_serve::answer_on`], and reports
//! throughput plus the server-side `net-socket-latency` percentiles
//! (frame decoded → response queued) and cross-connection coalescing
//! stats straight out of the `lbq-obs` registry.
//!
//! Modes:
//!
//! * default (full): 32 connections × 320 requests = 10 240 requests
//!   against a 100 k-point NA-like dataset; writes `BENCH_PR8.json`;
//! * `--quick`: 8 × 64 = 512 requests on a 10 k-point dataset for CI;
//!   writes `target/BENCH_PR8.quick.json`;
//! * `--check <file>`: parses an existing report and asserts the
//!   schema; no serving.

use lbq_bench::jsonv::{self, Json};
use lbq_core::LbqServer;
use lbq_data::na_like_sized;
use lbq_geom::Point;
use lbq_net::{NetClient, NetConfig, NetServer};
use lbq_obs::{metrics_snapshot, HistogramSummary, MetricValue};
use lbq_proto::{encode_query_response, Frame};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, Engine, EngineConfig, QueryReq, QueryResp};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

struct Report {
    mode: &'static str,
    n: usize,
    connections: u64,
    per_connection: u64,
    requests: u64,
    byte_identical: u64,
    elapsed_s: f64,
    socket_latency: HistogramSummary,
    coalesce: HistogramSummary,
    frames_in: u64,
    frames_out: u64,
    accepts: u64,
    protocol_errors: u64,
}

impl Report {
    fn qps(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.requests as f64 / self.elapsed_s.max(1e-9)
    }
}

fn counter_value(snapshot: &[(&str, MetricValue)], name: &str) -> u64 {
    snapshot
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, v)| match v {
            MetricValue::Counter(c) => *c,
            MetricValue::Gauge(g) => u64::try_from(*g).unwrap_or(0),
            MetricValue::Histogram(_) => 0,
        })
}

fn histogram_value(snapshot: &[(&str, MetricValue)], name: &str) -> HistogramSummary {
    snapshot
        .iter()
        .find(|(n, _)| *n == name)
        .and_then(|(_, v)| match v {
            MetricValue::Histogram(h) => Some(*h),
            _ => None,
        })
        .unwrap_or_default()
}

fn run(quick: bool) -> Report {
    let (n, connections, per_connection) = if quick {
        (10_000usize, 8u64, 64u64)
    } else {
        (100_000usize, 32u64, 320u64)
    };
    let requests = connections * per_connection;
    println!(
        "pr8_bench: n={n}, {connections} connections × {per_connection} requests = {requests}"
    );

    let data = na_like_sized(n, 42);
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load_packed(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    ));
    // Cache and hot tier disabled: a hit on either anchors its answer
    // at the *original* query's focus — correct, but not bit-comparable
    // to the fresh baseline. With both off, every response is the pure
    // function of its request that the byte-identical contract is
    // stated over.
    let engine = Arc::new(Engine::new(
        Arc::clone(&server),
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(2, |w| w.get().min(8)),
            cache: CacheConfig::disabled(),
            tile_size: 32,
            hot: lbq_serve::HotConfig::disabled(),
        },
    ));
    let mut net =
        NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("bind loopback");
    let addr = net.local_addr();
    let universe = data.universe;
    let span = (universe.xmax - universe.xmin, universe.ymax - universe.ymin);

    let start = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = Xoshiro256ss::seed_from_u64(0x8_BE0C_0DE + c);
                let mut client = NetClient::connect(addr).expect("connect");
                let reqs: Vec<(u64, QueryReq)> = (0..per_connection)
                    .map(|i| {
                        let p = Point::new(
                            universe.xmin + rng.gen_f64() * span.0,
                            universe.ymin + rng.gen_f64() * span.1,
                        );
                        let req = if rng.gen_bool(0.5) {
                            QueryReq::knn(p, 1 + rng.gen_index(10))
                        } else {
                            QueryReq::window(
                                p,
                                span.0 * 0.002 * (0.2 + rng.gen_f64()),
                                span.1 * 0.002 * (0.2 + rng.gen_f64()),
                            )
                        };
                        ((c << 32) | i, req)
                    })
                    .collect();
                // The pipelined fleet pattern: send everything,
                // half-close, read everything back.
                for (id, req) in &reqs {
                    client.send_query(*id, req).expect("send");
                }
                client.shutdown_write().expect("half-close");
                let mut seen: HashMap<u64, (Frame, Vec<u8>)> = HashMap::new();
                for _ in 0..reqs.len() {
                    let (frame, raw) = client.recv_raw().expect("recv");
                    seen.insert(frame.request_id(), (frame, raw));
                }
                (reqs, seen)
            })
        })
        .collect();
    let received: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed_s = start.elapsed().as_secs_f64();
    net.shutdown();

    // Verification outside the timed window: every response byte equals
    // the in-process encoding of the baseline answer.
    let mut byte_identical = 0u64;
    for (reqs, seen) in &received {
        assert_eq!(seen.len(), reqs.len(), "a request went unanswered");
        for (id, req) in reqs {
            let (frame, raw) = &seen[id];
            let query_id = match frame {
                Frame::KnnResponse(r) => r.query_id,
                Frame::WindowResponse(r) => r.query_id,
                other => panic!("request {id}: unexpected frame {other:?}"),
            };
            let resp = QueryResp {
                answer: Arc::new(answer_on(&server, req)),
                from_cache: false,
                tier: lbq_serve::CacheTier::Tree,
                worker: 0,     // not on the wire
                latency_ns: 0, // not on the wire
                query_id,
                stages: Default::default(),
            };
            let mut expected = Vec::new();
            encode_query_response(*id, &resp, &mut expected).expect("encode baseline");
            assert_eq!(
                raw, &expected,
                "request {id}: socket bytes differ from the in-process encoding"
            );
            byte_identical += 1;
        }
    }
    assert_eq!(byte_identical, requests);

    let snapshot = metrics_snapshot();
    Report {
        mode: if quick { "quick" } else { "full" },
        n,
        connections,
        per_connection,
        requests,
        byte_identical,
        elapsed_s,
        socket_latency: histogram_value(&snapshot, "net-socket-latency"),
        coalesce: histogram_value(&snapshot, "net-coalesce-batch"),
        frames_in: counter_value(&snapshot, "net-frames-in"),
        frames_out: counter_value(&snapshot, "net-frames-out"),
        accepts: counter_value(&snapshot, "net-accepts"),
        protocol_errors: counter_value(&snapshot, "net-protocol-errors"),
    }
}

fn render_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr8-network-serving\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!(
        "  \"dataset\": {{\"n\": {}, \"connections\": {}, \"per_connection\": {}}},\n",
        r.n, r.connections, r.per_connection
    ));
    s.push_str(&format!(
        "  \"fleet\": {{\"requests\": {}, \"byte_identical\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.0}}},\n",
        r.requests,
        r.byte_identical,
        r.elapsed_s,
        r.qps()
    ));
    s.push_str(&format!(
        "  \"socket_latency_ns\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}}},\n",
        r.socket_latency.count,
        r.socket_latency.p50_ns,
        r.socket_latency.p95_ns,
        r.socket_latency.p99_ns,
        r.socket_latency.mean_ns
    ));
    s.push_str(&format!(
        "  \"coalesce\": {{\"batches\": {}, \"mean_batch\": {}, \"p99_batch\": {}}},\n",
        r.coalesce.count, r.coalesce.mean_ns, r.coalesce.p99_ns
    ));
    s.push_str(&format!(
        "  \"counters\": {{\"accepts\": {}, \"frames_in\": {}, \"frames_out\": {}, \"protocol_errors\": {}}},\n",
        r.accepts, r.frames_in, r.frames_out, r.protocol_errors
    ));
    s.push_str("  \"equivalence\": {\"socket_vs_in_process\": \"byte-identical\"}\n");
    s.push_str("}\n");
    s
}

/// `--check`: the report must be valid JSON with the fleet block (all
/// requests byte-identical), socket-latency percentiles, coalescing
/// stats, and the counter block.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = jsonv::parse(&text)?;
    if v.get("bench").and_then(Json::as_str) != Some("pr8-network-serving") {
        return Err("not a pr8-network-serving report".into());
    }
    let fleet = v.get("fleet").ok_or("missing fleet block")?;
    for field in ["requests", "byte_identical", "elapsed_s", "qps"] {
        if fleet.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("fleet block missing numeric field {field:?}"));
        }
    }
    let requests = fleet.get("requests").and_then(Json::as_f64).unwrap_or(0.0);
    let identical = fleet
        .get("byte_identical")
        .and_then(Json::as_f64)
        .unwrap_or(-1.0);
    if identical != requests {
        return Err(format!(
            "byte_identical ({identical}) != requests ({requests})"
        ));
    }
    if v.get("mode").and_then(Json::as_str) == Some("full") && requests < 10_000.0 {
        return Err(format!(
            "full mode must drive ≥ 10 000 requests, got {requests}"
        ));
    }
    let lat = v
        .get("socket_latency_ns")
        .ok_or("missing socket_latency_ns")?;
    for field in ["count", "p50", "p95", "p99", "mean"] {
        if lat.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("socket_latency_ns missing field {field:?}"));
        }
    }
    for block in ["coalesce", "counters", "equivalence"] {
        if v.get(block).is_none() {
            return Err(format!("missing {block} block"));
        }
    }
    println!("pr8_bench --check {path}: ok ({requests} requests, all byte-identical)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_PR8.json");
        if let Err(e) = check(path) {
            eprintln!("pr8_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let report = run(quick);

    println!(
        "fleet: {} requests in {:.2}s ({:.0} q/s), {} byte-identical",
        report.requests,
        report.elapsed_s,
        report.qps(),
        report.byte_identical
    );
    println!(
        "socket latency: p50 {}ns p95 {}ns p99 {}ns mean {}ns (n={})",
        report.socket_latency.p50_ns,
        report.socket_latency.p95_ns,
        report.socket_latency.p99_ns,
        report.socket_latency.mean_ns,
        report.socket_latency.count
    );
    println!(
        "coalescing: {} batches, mean size {}, p99 size {}",
        report.coalesce.count, report.coalesce.mean_ns, report.coalesce.p99_ns
    );

    let out = if quick {
        std::path::PathBuf::from("target/BENCH_PR8.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_PR8.json")
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let rendered = render_json(&report);
    jsonv::validate(&rendered).expect("harness emits valid JSON");
    std::fs::write(&out, rendered).expect("writing bench report");
    println!("wrote {}", out.display());
}
