//! Speedup-trajectory table across every `BENCH_*.json` in the CWD.
//!
//! Each PR's harness freezes its headline numbers into a
//! machine-readable report; this bin reads them all back and prints
//! one table showing how the stack's performance story has compounded
//! — per-primitive speedups (PR 4/5), observability overhead (PR 7),
//! network throughput (PR 8), and the hot-tile fast path (PR 9).
//! Reports with an unrecognized schema are listed, not fatal: the
//! trend table must keep working as future PRs add reports.
//!
//! ```text
//! cargo run --release -p lbq-bench --bin bench_trend
//! ```

use lbq_bench::jsonv::{self, Json};

struct Row {
    report: String,
    entry: String,
    metric: &'static str,
    value: String,
}

fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Headline rows for one parsed report, dispatched on its `bench` tag.
fn rows_for(file: &str, v: &Json) -> Vec<Row> {
    let row = |entry: &str, metric: &'static str, value: String| Row {
        report: file.to_string(),
        entry: entry.to_string(),
        metric,
        value,
    };
    let f64_at = |path: &[&str]| -> Option<f64> {
        let mut cur = v;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_f64()
    };
    match v.get("bench").and_then(Json::as_str) {
        // PR 4 and PR 5 share the entries[] before/after schema.
        Some("pr4-soa-scratch") | Some("pr5-locality-pipeline") => v
            .get("entries")
            .and_then(Json::as_arr)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|e| {
                        let name = e.get("name").and_then(Json::as_str)?;
                        let speedup = e.get("speedup").and_then(Json::as_f64)?;
                        Some(row(name, "speedup", fmt_x(speedup)))
                    })
                    .collect()
            })
            .unwrap_or_default(),
        Some("pr7-observability") => {
            let mut out = Vec::new();
            if let Some(r) = f64_at(&["serve", "on_over_off"]) {
                out.push(row("serve obs-on/off", "overhead", format!("{r:.4}")));
            }
            if let Some(r) = f64_at(&["serve", "vs_pr5"]) {
                out.push(row("serve obs-off vs pr5", "ratio", format!("{r:.4}")));
            }
            out
        }
        Some("pr8-network-serving") => {
            let mut out = Vec::new();
            if let Some(q) = f64_at(&["fleet", "qps"]) {
                out.push(row("loopback fleet", "qps", format!("{q:.0}")));
            }
            if let (Some(total), Some(ok)) = (
                f64_at(&["fleet", "requests"]),
                f64_at(&["fleet", "byte_identical"]),
            ) {
                out.push(row(
                    "byte-identical",
                    "verified",
                    format!("{ok:.0}/{total:.0}"),
                ));
            }
            out
        }
        Some("pr9-hot-voronoi") => {
            let mut out = Vec::new();
            if let Some(s) = f64_at(&["hot", "speedup"]) {
                out.push(row("hot-tile fast path", "speedup", fmt_x(s)));
            }
            if let Some(h) = f64_at(&["hot", "hit_share"]) {
                out.push(row(
                    "steady-state hits",
                    "share",
                    format!("{:.1}%", h * 100.0),
                ));
            }
            if let Some(c) = f64_at(&["cold", "cold_overhead"]) {
                out.push(row("uniform cold stream", "overhead", format!("{c:.4}")));
            }
            out
        }
        Some(other) => vec![row(other, "schema", "(no trend extractor)".into())],
        None => vec![row("?", "schema", "(missing bench tag)".into())],
    }
}

fn main() -> std::process::ExitCode {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .expect("read CWD")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("bench_trend: no BENCH_*.json in the current directory");
        return std::process::ExitCode::FAILURE;
    }

    let mut rows = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| jsonv::parse(&text))
        {
            Ok(v) => rows.extend(rows_for(file, &v)),
            Err(e) => rows.push(Row {
                report: file.clone(),
                entry: "?".into(),
                metric: "error",
                value: e,
            }),
        }
    }

    println!("== bench trend ({} reports)", files.len());
    let w0 = rows
        .iter()
        .map(|r| r.report.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let w1 = rows.iter().map(|r| r.entry.len()).max().unwrap_or(5).max(5);
    let w2 = rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(6)
        .max(6);
    println!(
        "{:<w0$}  {:<w1$}  {:<w2$}  value",
        "report", "entry", "metric"
    );
    let mut prev = "";
    for r in &rows {
        let report = if r.report == prev {
            ""
        } else {
            r.report.as_str()
        };
        prev = &r.report;
        println!(
            "{report:<w0$}  {:<w1$}  {:<w2$}  {}",
            r.entry, r.metric, r.value
        );
    }
    std::process::ExitCode::SUCCESS
}
