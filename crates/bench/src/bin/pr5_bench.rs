//! Before/after harness for the locality pipeline (Hilbert-packed
//! arena, tile-batched dispatch, shared-frontier group kNN), emitting
//! machine-readable `BENCH_PR5.json`.
//!
//! Five entries, each a before/after ns/op pair:
//!
//! | entry | before | after |
//! |---|---|---|
//! | `knn` | `knn_in` on the build-order arena | same queries on the repacked arena |
//! | `tpnn` | `tp_nn_in`, build-order arena | repacked arena |
//! | `validity_region` | `retrieve_influence_set_in`, build-order arena | repacked arena |
//! | `knn_group` | per-query `knn_in` over a 32-query tile (repacked) | one `knn_group_in` traversal |
//! | `serve_batch` | untiled engine (1 query/job) on the build-order tree | tiled engine (32/job) on the repacked tree |
//!
//! The per-query entries run a Hilbert-sorted uniform stream — the order
//! the tile-batched engine actually produces — so they measure the
//! layout under its intended access pattern. `knn_group` and
//! `serve_batch` run the ISSUE's motivating workload instead: hotspot
//! batches (many clients around shared landmarks), the spatially
//! correlated tiles the shared frontier exists for. Both `serve_batch`
//! engines run with the cache disabled: the entry isolates dispatch +
//! traversal cost, not hit rates.
//!
//! Equivalence is asserted on every run (both modes): the tiled engine's
//! responses are byte-identical to the untiled engine's, the grouped
//! traversal's results are bit-identical to per-query kNN, and the
//! steady-state `retrieve_influence_set_in` path allocates nothing.
//!
//! Modes:
//!
//! * default (full): paper-scale dataset, asserts `serve_batch` is
//!   ≥ 1.3× faster, writes `BENCH_PR5.json` in the CWD;
//! * `--quick`: ~10× smaller CI smoke — every entry and every
//!   equivalence assertion, no speedup gate (CI timing is noise),
//!   writes `target/BENCH_PR5.quick.json`;
//! * `--check <file>`: parses an existing report and asserts it carries
//!   all five entries plus the steady-state block; no benchmarking.

use lbq_bench::jsonv;
use lbq_core::LbqServer;
use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::hilbert::hilbert_key;
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig};
use lbq_serve::{CacheConfig, Engine, EngineConfig, QueryReq};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A pass-through allocator that counts every allocation into the
/// `lbq_obs` bare-atomic hook (same harness as `pr4_bench`).
struct CountingAlloc;

// The workspace denies `unsafe_code`; a `#[global_allocator]` is the
// one place it cannot be avoided — the trait itself is unsafe. Scope
// the allowance to exactly this impl.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        lbq_obs::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        lbq_obs::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One before/after measurement.
struct Entry {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        // lbq-check: allow(local-epsilon) — divide-by-zero floor, not a tolerance
        self.before_ns / self.after_ns.max(1e-9)
    }
}

/// Times a before/after pair over `iters` iterations each: interleaved
/// batches, five rounds, fastest batch per side (see `pr4_bench` for
/// the noise-robustness rationale).
fn measure_pair<A, B>(
    iters: usize,
    mut before: impl FnMut(usize) -> A,
    mut after: impl FnMut(usize) -> B,
) -> (f64, f64) {
    for i in 0..iters.min(16) {
        black_box(before(i));
        black_box(after(i));
    }
    let mut before_ns = f64::INFINITY;
    let mut after_ns = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for i in 0..iters {
            black_box(before(i));
        }
        before_ns = before_ns.min(t.elapsed().as_secs_f64() * 1e9);
        let t = Instant::now();
        for i in 0..iters {
            black_box(after(i));
        }
        after_ns = after_ns.min(t.elapsed().as_secs_f64() * 1e9);
    }
    (before_ns / iters as f64, after_ns / iters as f64)
}

fn random_items(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|i| Item::new(Point::new(rng.gen_f64(), rng.gen_f64()), i as u64))
        .collect()
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(0.05 + 0.9 * rng.gen_f64(), 0.05 + 0.9 * rng.gen_f64()))
        .collect()
}

/// The motivating serve workload: `clusters` hotspots (landmarks, road
/// junctions) with `per` clients each, every focus within `radius` of
/// its hotspot. Returned hotspot-by-hotspot, which is the order a
/// Hilbert sort recovers anyway for well-separated hotspots.
fn hotspot_points(clusters: usize, per: usize, radius: f64, seed: u64) -> Vec<Point> {
    let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
    let mut out = Vec::with_capacity(clusters * per);
    for _ in 0..clusters {
        let c = Point::new(0.1 + 0.8 * rng.gen_f64(), 0.1 + 0.8 * rng.gen_f64());
        for _ in 0..per {
            out.push(Point::new(
                c.x + radius * (2.0 * rng.gen_f64() - 1.0),
                c.y + radius * (2.0 * rng.gen_f64() - 1.0),
            ));
        }
    }
    out
}

struct Report {
    mode: &'static str,
    n: usize,
    queries: usize,
    tile: usize,
    entries: Vec<Entry>,
    validity_region_in_steady_allocs: u64,
}

const TILE: usize = 32;

fn run(quick: bool) -> Report {
    let (n, queries, batch) = if quick {
        (10_000, 512, 128)
    } else {
        (400_000, 4096, 1024)
    };
    let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
    let config = RTreeConfig::paper();
    let items = random_items(n, 0xC0FFEE);
    println!(
        "pr5_bench: n={n}, queries={queries}, batch={batch}, tile={TILE}, fanout={}",
        config.max_entries
    );

    // Before: the STR bulk-load arena in build order. After: the same
    // tree rewritten into the Hilbert-packed layout.
    let orig = RTree::bulk_load(items.clone(), config);
    let packed = orig.repack();
    assert!(packed.is_packed(), "repack must produce a packed arena");
    assert_eq!(packed.node_count(), orig.node_count());

    // Hilbert-sorted query stream — what the tile-batched engine feeds
    // each worker.
    let mut foci = random_points(queries, 7);
    foci.sort_by_key(|&p| hilbert_key(p, &universe));
    let dirs: Vec<Vec2> = {
        let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(11);
        (0..queries)
            .map(|_| {
                let a = rng.gen_f64() * std::f64::consts::TAU;
                Vec2::new(a.cos(), a.sin())
            })
            .collect()
    };
    let mut scratch = QueryScratch::new();
    let mut scratch_b = QueryScratch::new();
    let inners: Vec<Item> = foci
        .iter()
        .map(|&q| orig.knn_in(q, 1, &mut scratch)[0].0)
        .collect();

    // Tight tiles: `queries` foci around `queries / TILE` hotspots, one
    // hotspot per tile — the spatially correlated batches the tiling
    // targets. The uniform `foci` above double as the spread case.
    let k = 10;
    let cl_foci = hotspot_points(queries / TILE, TILE, 0.002, 17);

    // -- equivalence: grouped traversal vs per-query kNN ---------------
    // Both regimes: tight tiles take the shared frontier, uniform tiles
    // the per-query fallback; both must match `knn_in` bit for bit.
    for (t, tile) in cl_foci
        .chunks(TILE)
        .take(8)
        .chain(foci.chunks(TILE).take(8))
        .enumerate()
    {
        let grouped: Vec<(u64, u64)> = packed
            .knn_group(tile, k)
            .iter()
            .map(|&(it, d)| (it.id, d.to_bits()))
            .collect();
        let mut single: Vec<(u64, u64)> = Vec::new();
        for &q in tile {
            single.extend(
                packed
                    .knn_in(q, k, &mut scratch)
                    .iter()
                    .map(|&(it, d)| (it.id, d.to_bits())),
            );
        }
        assert_eq!(grouped, single, "tile {t}: group kNN must be bit-identical");
    }

    let mut entries = Vec::new();

    // -- knn -----------------------------------------------------------
    let (before_ns, after_ns) = measure_pair(
        queries,
        |i| orig.knn_in(foci[i % queries], k, &mut scratch).len(),
        |i| packed.knn_in(foci[i % queries], k, &mut scratch_b).len(),
    );
    entries.push(Entry {
        name: "knn",
        before_ns,
        after_ns,
    });

    // -- tpnn ----------------------------------------------------------
    let t_max = 0.25;
    let (before_ns, after_ns) = measure_pair(
        queries,
        |i| {
            let j = i % queries;
            orig.tp_nn_in(foci[j], dirs[j], t_max, inners[j], &mut scratch)
                .map(|e| e.object.id)
        },
        |i| {
            let j = i % queries;
            packed
                .tp_nn_in(foci[j], dirs[j], t_max, inners[j], &mut scratch_b)
                .map(|e| e.object.id)
        },
    );
    entries.push(Entry {
        name: "tpnn",
        before_ns,
        after_ns,
    });

    // -- validity_region ------------------------------------------------
    let region_iters = queries.min(256);
    let (before_ns, after_ns) = measure_pair(
        region_iters,
        |i| {
            let j = i % queries;
            lbq_core::retrieve_influence_set_in(
                &orig,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1
        },
        |i| {
            let j = i % queries;
            lbq_core::retrieve_influence_set_in(
                &packed,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch_b,
            )
            .1
        },
    );
    entries.push(Entry {
        name: "validity_region",
        before_ns,
        after_ns,
    });

    // -- knn_group ------------------------------------------------------
    // Both sides on the packed tree: the entry isolates the shared
    // frontier, not the layout. One iteration = one 32-query hotspot
    // tile (spread tiles fall back to per-query descent and tie).
    let tiles: Vec<&[Point]> = cl_foci.chunks(TILE).collect();
    let (before_ns, after_ns) = measure_pair(
        tiles.len(),
        |i| {
            let tile = tiles[i % tiles.len()];
            let mut total = 0usize;
            for &q in tile {
                total += packed.knn_in(q, k, &mut scratch).len();
            }
            total
        },
        |i| {
            let tile = tiles[i % tiles.len()];
            packed.knn_group_in(tile, k, &mut scratch_b).len()
        },
    );
    entries.push(Entry {
        name: "knn_group",
        before_ns,
        after_ns,
    });

    // -- steady-state zero-allocation proof -----------------------------
    for j in 0..queries.min(16) {
        let _ = black_box(
            lbq_core::retrieve_influence_set_in(
                &packed,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1,
        );
    }
    let a0 = lbq_obs::alloc_count();
    for i in 0..100 {
        let j = i % queries;
        let _ = black_box(
            lbq_core::retrieve_influence_set_in(
                &packed,
                foci[j],
                std::slice::from_ref(&inners[j]),
                universe,
                &mut scratch,
            )
            .1,
        );
    }
    let validity_region_in_steady_allocs = lbq_obs::alloc_count() - a0;

    // -- serve_batch ----------------------------------------------------
    // Whole-engine round trip: submit() a batch and wait for it. Before:
    // one job per query on the build-order tree. After: Hilbert tiles of
    // TILE queries (shared-frontier kNN inside) on the repacked tree.
    let workers = std::thread::available_parallelism().map_or(2, |w| w.get().min(8));
    let eng_before = Engine::new(
        Arc::new(LbqServer::new(
            RTree::bulk_load(items.clone(), config),
            universe,
        )),
        EngineConfig {
            workers,
            cache: CacheConfig::disabled(),
            tile_size: 1,
            hot: lbq_serve::HotConfig::disabled(),
            ..EngineConfig::default()
        },
    );
    let eng_after = Engine::new(
        Arc::new(LbqServer::new(
            RTree::bulk_load_packed(items.clone(), config),
            universe,
        )),
        EngineConfig {
            workers,
            cache: CacheConfig::disabled(),
            tile_size: TILE,
            hot: lbq_serve::HotConfig::disabled(),
            ..EngineConfig::default()
        },
    );
    let reqs: Vec<QueryReq> = hotspot_points(batch / TILE, TILE, 0.002, 13)
        .into_iter()
        .map(|p| QueryReq::knn(p, k))
        .collect();

    // Equivalence: the tiled+repacked engine answers byte-for-byte what
    // the untiled engine answers, in the same output order.
    let base = eng_before.submit(reqs.clone());
    let tiled = eng_after.submit(reqs.clone());
    assert_eq!(base.len(), tiled.len());
    for (i, (b, t)) in base.iter().zip(&tiled).enumerate() {
        assert_eq!(
            format!("{:?}", b.answer),
            format!("{:?}", t.answer),
            "request {i}: tiled response diverged from untiled"
        );
    }

    let batch_iters = 8;
    let (before_ns, after_ns) = measure_pair(
        batch_iters,
        |_| eng_before.submit(reqs.clone()).len(),
        |_| eng_after.submit(reqs.clone()).len(),
    );
    entries.push(Entry {
        name: "serve_batch",
        before_ns,
        after_ns,
    });

    Report {
        mode: if quick { "quick" } else { "full" },
        n,
        queries,
        tile: TILE,
        entries,
        validity_region_in_steady_allocs,
    }
}

fn render_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr5-locality-pipeline\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!(
        "  \"dataset\": {{\"n\": {}, \"queries\": {}, \"tile\": {}}},\n",
        r.n, r.queries, r.tile
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in r.entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup(),
            if i + 1 < r.entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"steady_state\": {{\"validity_region_in_allocs\": {}}},\n",
        r.validity_region_in_steady_allocs
    ));
    s.push_str(
        "  \"equivalence\": {\"tiled_vs_untiled\": \"byte-identical\", \
         \"group_vs_single\": \"bit-identical\"}\n",
    );
    s.push_str("}\n");
    s
}

/// `--check`: the report must be valid JSON and carry all five entries
/// with before/after fields plus the steady-state block.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    jsonv::validate(&text)?;
    for name in ["knn", "tpnn", "validity_region", "knn_group", "serve_batch"] {
        let key = format!("\"name\": \"{name}\"");
        let Some(at) = text.find(&key) else {
            return Err(format!("missing entry {name:?}"));
        };
        let rest = &text[at..text[at..].find('}').map_or(text.len(), |e| at + e)];
        for field in ["before_ns", "after_ns", "speedup"] {
            if !rest.contains(field) {
                return Err(format!("entry {name:?} missing field {field:?}"));
            }
        }
    }
    for field in ["validity_region_in_allocs", "tiled_vs_untiled"] {
        if !text.contains(field) {
            return Err(format!("missing report field {field:?}"));
        }
    }
    println!("pr5_bench --check {path}: ok (5 entries, steady-state block)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_PR5.json");
        if let Err(e) = check(path) {
            eprintln!("pr5_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let report = run(quick);

    for e in &report.entries {
        println!(
            "{:<18} before {:>10.0} ns/op   after {:>10.0} ns/op   {:>5.2}x",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup()
        );
    }
    println!(
        "steady-state allocs: validity_region_in={}",
        report.validity_region_in_steady_allocs
    );

    // Write the report before enforcing gates: the artifact must
    // reflect what was measured even when a gate trips (downstream
    // harnesses — pr7_bench's overhead ratio — need the same-machine
    // baseline either way).
    let out = if quick {
        std::path::PathBuf::from("target/BENCH_PR5.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_PR5.json")
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let rendered = render_json(&report);
    jsonv::validate(&rendered).expect("harness emits valid JSON");
    std::fs::write(&out, rendered).expect("writing bench report");
    println!("wrote {}", out.display());

    assert_eq!(
        report.validity_region_in_steady_allocs, 0,
        "retrieve_influence_set_in must be allocation-free after warm-up"
    );
    if !quick {
        let serve = report
            .entries
            .iter()
            .find(|e| e.name == "serve_batch")
            .expect("serve entry present");
        assert!(
            serve.speedup() >= 1.3,
            "tiled+repacked serve_batch must be >= 1.3x faster, got {:.2}x \
             (note: the tiling advantage needs multiple cores; single-core \
             machines land lower)",
            serve.speedup()
        );
    }
}
