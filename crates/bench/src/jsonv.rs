//! Minimal JSON validation for benchmark reports: a recursive-descent
//! skim that accepts exactly the JSON grammar (objects, arrays, strings
//! with escapes, numbers, literals) — enough for the `--check` modes of
//! the `pr4_bench` / `pr5_bench` binaries to reject truncated or
//! hand-mangled reports without an external parser.

/// Validates that `s` is one complete JSON value with no trailing
/// bytes. Returns the offset and nature of the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {other:?} at offset {i}")),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // {
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // [
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at offset {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_report_shaped_json() {
        let ok = r#"{
  "bench": "x",
  "entries": [{"name": "knn", "speedup": 1.25e0, "n": -3}],
  "flags": [true, false, null],
  "empty": {}, "none": []
}"#;
        validate(ok).unwrap();
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "tru",
            "",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
