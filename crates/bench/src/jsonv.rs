//! Minimal JSON handling for benchmark reports: a recursive-descent
//! skim ([`validate`]) that accepts exactly the JSON grammar (objects,
//! arrays, strings with escapes, numbers, literals), and a value parser
//! ([`parse`]) building a [`Json`] tree — enough for the `--check` and
//! smoke modes of the `pr4_bench` / `pr5_bench` / `pr7_bench` binaries
//! to inspect reports and exporter snapshots without an external
//! parser.

/// Validates that `s` is one complete JSON value with no trailing
/// bytes. Returns the offset and nature of the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

/// A parsed JSON value. Object keys keep insertion order (reports are
/// small; no map needed).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `s` as one complete JSON value (no trailing bytes).
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    match b.get(*i) {
        Some(b'{') => {
            let mut fields = Vec::new();
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at offset {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                fields.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
                }
            }
        }
        Some(b'[') => {
            let mut items = Vec::new();
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(b, i);
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b't') => literal(b, i, b"true").map(|()| Json::Bool(true)),
        Some(b'f') => literal(b, i, b"false").map(|()| Json::Bool(false)),
        Some(b'n') => literal(b, i, b"null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            number(b, i)?;
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        other => Err(format!("unexpected {other:?} at offset {i}")),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|e| format!("bad utf8 in string: {e}"));
            }
            b'\\' => {
                let esc = b.get(*i + 1).copied();
                *i += 2;
                match esc {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'u') => {
                        let hex = b
                            .get(*i..*i + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {i}"))?;
                        *i += 4;
                        let ch = char::from_u32(hex).unwrap_or(char::REPLACEMENT_CHARACTER);
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
            }
            _ => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {other:?} at offset {i}")),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // {
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // [
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at offset {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, validate, Json};

    #[test]
    fn parses_values_and_fields() {
        let v = parse(r#"{"a": 1.5, "b": [true, null, "x\n\u0041"], "c": {"d": -2}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.5));
        let b = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\nA"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.0)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["{", "[1 2]", "\"\\u00G1\"", "{\"a\":1} x", ""] {
            assert!(parse(bad).is_err(), "parsed {bad:?}");
        }
    }

    #[test]
    fn accepts_report_shaped_json() {
        let ok = r#"{
  "bench": "x",
  "entries": [{"name": "knn", "speedup": 1.25e0, "n": -3}],
  "flags": [true, false, null],
  "empty": {}, "none": []
}"#;
        validate(ok).unwrap();
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "tru",
            "",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
