//! One function per figure of the paper's Section 6.
//!
//! Conventions:
//!
//! * "actual" columns are workload averages over `cfg.queries`
//!   data-distributed queries (the paper uses 500);
//! * "estimated" columns come from `lbq_core::analysis` — on uniform
//!   data directly, on GR/NA via the Minskew effective cardinality
//!   (eq. 5-6);
//! * costs are per-query node accesses (NA) and page accesses (PA)
//!   through an LRU buffer of 10% of the tree, kept warm across the
//!   workload exactly as a server buffer would be.

use crate::harness::{mean, ExpConfig, Table};
use lbq_core::{analysis, retrieve_influence_set};
use lbq_data::{paper_query_points, uniform_unit, window_queries, window_queries_frac, Dataset};
use lbq_geom::{Point, Rect};
use lbq_hist::Minskew;
use lbq_rtree::{Item, RTree, RTreeConfig};

/// Builds the paper's R\*-tree (4 KiB pages) over a dataset.
pub fn build_tree(data: &Dataset) -> RTree {
    RTree::bulk_load(data.items.clone(), RTreeConfig::paper())
}

/// Aggregate measurements of a location-based NN workload.
pub struct NnWorkloadStats {
    /// Mean validity-region area (absolute units²).
    pub area: f64,
    /// Mean number of region edges.
    pub edges: f64,
    /// Mean |S_inf| (distinct influence objects).
    pub sinf: f64,
    /// Mean TPNN queries per location-based query.
    pub tpnn_queries: f64,
    /// Mean node accesses of the initial NN query.
    pub na_nn: f64,
    /// Mean node accesses of all TPNN queries.
    pub na_tp: f64,
    /// Mean page accesses (10% LRU buffer) of the initial NN query.
    pub pa_nn: f64,
    /// Mean page accesses of the TPNN queries.
    pub pa_tp: f64,
}

/// Runs a location-based kNN workload and aggregates the paper's
/// metrics.
pub fn run_nn_workload(
    tree: &RTree,
    universe: Rect,
    queries: &[Point],
    k: usize,
) -> NnWorkloadStats {
    tree.set_buffer_fraction(0.1);
    let (mut areas, mut edges, mut sinfs, mut tpnns) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut na_nn, mut na_tp, mut pa_nn, mut pa_tp) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for &q in queries {
        let (inner, s1) = tree.with_stats(|t| {
            t.knn(q, k)
                .into_iter()
                .map(|(i, _)| i)
                .collect::<Vec<Item>>()
        });
        if inner.is_empty() {
            continue;
        }
        let ((validity, tpnn), s2) =
            tree.with_stats(|t| retrieve_influence_set(t, q, &inner, universe));
        areas.push(validity.area());
        edges.push(validity.edge_count() as f64);
        sinfs.push(validity.influence_count() as f64);
        tpnns.push(tpnn as f64);
        na_nn.push(s1.node_accesses as f64);
        na_tp.push(s2.node_accesses as f64);
        pa_nn.push(s1.page_faults as f64);
        pa_tp.push(s2.page_faults as f64);
    }
    tree.clear_buffer();
    NnWorkloadStats {
        area: mean(&areas),
        edges: mean(&edges),
        sinf: mean(&sinfs),
        tpnn_queries: mean(&tpnns),
        na_nn: mean(&na_nn),
        na_tp: mean(&na_tp),
        pa_nn: mean(&pa_nn),
        pa_tp: mean(&pa_tp),
    }
}

/// Aggregate measurements of a location-based window workload.
pub struct WindowWorkloadStats {
    /// Mean exact validity-region area.
    pub area: f64,
    /// Mean inner influence objects.
    pub inner: f64,
    /// Mean outer influence objects.
    pub outer: f64,
    /// Mean node accesses of the result query.
    pub na_result: f64,
    /// Mean node accesses of the outer-candidate query.
    pub na_outer: f64,
    /// Mean page accesses of the result query (10% LRU).
    pub pa_result: f64,
    /// Mean page accesses of the outer-candidate query.
    pub pa_outer: f64,
}

/// Runs a location-based window workload.
pub fn run_window_workload(tree: &RTree, universe: Rect, windows: &[Rect]) -> WindowWorkloadStats {
    tree.set_buffer_fraction(0.1);
    let (mut areas, mut inner, mut outer) = (Vec::new(), Vec::new(), Vec::new());
    let (mut na1, mut na2, mut pa1, mut pa2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for w in windows {
        let c = w.center();
        let (hx, hy) = (w.width() / 2.0, w.height() / 2.0);
        // Phase 1: the result query; phase 2: only the extended-window
        // (outer-candidate) query, via the split entry point.
        let (result, s1) = tree.with_stats(|t| t.window(w));
        let (resp, s2) = tree.with_stats(|t| {
            lbq_core::window::window_validity_from_result(t, c, hx, hy, universe, result)
        });
        if resp.result.is_empty() {
            continue;
        }
        areas.push(resp.validity.area());
        inner.push(resp.validity.inner_influence.len() as f64);
        outer.push(resp.validity.outer_influence.len() as f64);
        na1.push(s1.node_accesses as f64);
        na2.push(s2.node_accesses as f64);
        pa1.push(s1.page_faults as f64);
        pa2.push(s2.page_faults as f64);
    }
    tree.clear_buffer();
    WindowWorkloadStats {
        area: mean(&areas),
        inner: mean(&inner),
        outer: mean(&outer),
        na_result: mean(&na1),
        na_outer: mean(&na2),
        pa_result: mean(&pa1),
        pa_outer: mean(&pa2),
    }
}

// ----------------------------------------------------------------- NN

/// Fig. 22a — area of V(q), 1-NN, uniform data vs cardinality.
pub fn fig22a(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "fig22a",
        "area of V(q) vs N (uniform, k=1), actual vs estimated",
        &["n", "actual", "estimated"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let queries = paper_query_points(&data, cfg.seed)
            .into_iter()
            .take(cfg.queries)
            .collect::<Vec<_>>();
        let st = run_nn_workload(&tree, data.universe, &queries, 1);
        t.push(vec![
            n as f64,
            st.area,
            analysis::nn_validity_area(n as f64, 1),
        ]);
    }
    t
}

/// Fig. 22b — area of V(q) vs k (uniform, N = 100k·scale).
pub fn fig22b(cfg: &ExpConfig) -> Table {
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut t = Table::new(
        "fig22b",
        "area of V(q) vs k (uniform, N=100k), actual vs estimated",
        &["k", "actual", "estimated"],
    );
    for k in cfg.ks() {
        let st = run_nn_workload(&tree, data.universe, &queries, k);
        t.push(vec![
            k as f64,
            st.area,
            analysis::nn_validity_area(n as f64, k),
        ]);
    }
    t
}

/// Shared k-sweep over a real dataset with Minskew-corrected estimates
/// (Figs. 23 and 26 read different columns of the same run; Fig. 28
/// reads its cost columns).
pub fn real_dataset_k_sweep(cfg: &ExpConfig, data: &Dataset) -> Table {
    let tree = build_tree(data);
    let hist = Minskew::paper(&data.points(), data.universe);
    let queries: Vec<Point> = paper_query_points(data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut t = Table::new(
        &format!("ksweep-{}", data.name),
        &format!("k sweep over {} (area, |Sinf|, cost)", data.name),
        &[
            "k", "area", "area_est", "sinf", "edges", "na_nn", "na_tp", "pa_nn", "pa_tp",
        ],
    );
    for k in cfg.ks() {
        let st = run_nn_workload(&tree, data.universe, &queries, k);
        // Estimate: per-query effective cardinality, averaged areas.
        let est = mean(
            &queries
                .iter()
                .map(|&q| {
                    let n_eff = hist.effective_cardinality_nn(q, k);
                    analysis::nn_validity_area(n_eff.max(1.0), k) * data.universe.area()
                })
                .collect::<Vec<_>>(),
        );
        t.push(vec![
            k as f64, st.area, est, st.sinf, st.edges, st.na_nn, st.na_tp, st.pa_nn, st.pa_tp,
        ]);
    }
    t
}

/// Fig. 23 — area of V(q) vs k on GR and NA.
pub fn fig23(cfg: &ExpConfig) -> Vec<Table> {
    let gr = lbq_data::gr_like_sized(cfg.gr_n(), cfg.seed);
    let na = lbq_data::na_like_sized(cfg.na_n(), cfg.seed);
    let mut out = Vec::new();
    for data in [gr, na] {
        let mut t = real_dataset_k_sweep(cfg, &data);
        t.id = format!("fig23-{}", data.name);
        t.caption = format!("area of V(q) vs k ({}), actual vs estimated", data.name);
        out.push(t);
    }
    out
}

/// Fig. 24 — number of edges of V(q) vs N and vs k (uniform; ≈6).
pub fn fig24(cfg: &ExpConfig) -> Vec<Table> {
    let mut by_n = Table::new(
        "fig24a",
        "edges of V(q) vs N (uniform, k=1); theory: ~6",
        &["n", "edges"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
            .into_iter()
            .take(cfg.queries)
            .collect();
        let st = run_nn_workload(&tree, data.universe, &queries, 1);
        by_n.push(vec![n as f64, st.edges]);
    }
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut by_k = Table::new(
        "fig24b",
        "edges of V(q) vs k (uniform, N=100k); theory: ~6",
        &["k", "edges"],
    );
    for k in cfg.ks() {
        let st = run_nn_workload(&tree, data.universe, &queries, k);
        by_k.push(vec![k as f64, st.edges]);
    }
    vec![by_n, by_k]
}

/// Fig. 25 — |S_inf| vs N and vs k (uniform; 6 dropping toward 4).
pub fn fig25(cfg: &ExpConfig) -> Vec<Table> {
    let mut by_n = Table::new(
        "fig25a",
        "|Sinf| vs N (uniform, k=1); theory: ~6",
        &["n", "sinf"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
            .into_iter()
            .take(cfg.queries)
            .collect();
        let st = run_nn_workload(&tree, data.universe, &queries, 1);
        by_n.push(vec![n as f64, st.sinf]);
    }
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut by_k = Table::new(
        "fig25b",
        "|Sinf| vs k (uniform, N=100k); drops toward ~4",
        &["k", "sinf"],
    );
    for k in cfg.ks() {
        let st = run_nn_workload(&tree, data.universe, &queries, k);
        by_k.push(vec![k as f64, st.sinf]);
    }
    vec![by_n, by_k]
}

/// Fig. 26 — |S_inf| vs k on GR and NA.
pub fn fig26(cfg: &ExpConfig) -> Vec<Table> {
    fig23(cfg)
        .into_iter()
        .map(|mut t| {
            t.id = t.id.replace("fig23", "fig26");
            t.caption = t.caption.replace("area of V(q)", "|Sinf|");
            t
        })
        .collect()
}

/// Fig. 27 — server cost of location-based NN vs N (uniform, k=1):
/// NA and PA split between the initial NN query and the TPNN queries.
pub fn fig27(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "fig27",
        "NN cost vs N (uniform, k=1): NA/PA split NN vs TPNN (10% LRU)",
        &["n", "na_nn", "na_tp", "pa_nn", "pa_tp"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
            .into_iter()
            .take(cfg.queries)
            .collect();
        let st = run_nn_workload(&tree, data.universe, &queries, 1);
        t.push(vec![n as f64, st.na_nn, st.na_tp, st.pa_nn, st.pa_tp]);
    }
    t
}

/// Fig. 28 — NN cost vs k on GR and NA (same run as Fig. 23, cost
/// columns).
pub fn fig28(cfg: &ExpConfig) -> Vec<Table> {
    fig23(cfg)
        .into_iter()
        .map(|mut t| {
            t.id = t.id.replace("fig23", "fig28");
            t.caption = t
                .caption
                .replace("area of V(q) vs k", "NA and PA vs k (10% LRU)");
            t
        })
        .collect()
}

// ------------------------------------------------------------- window

/// Fig. 29 — window validity-region area, uniform: (a) vs N at
/// qs = 0.1%, (b) vs qs at N = 100k; actual vs estimated (eq. 5-4/5-5).
pub fn fig29(cfg: &ExpConfig) -> Vec<Table> {
    let mut by_n = Table::new(
        "fig29a",
        "window V(q) area vs N (uniform, qs=0.1%), actual vs estimated",
        &["n", "actual", "estimated"],
    );
    let frac = 0.001;
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let windows: Vec<Rect> = window_queries_frac(&data, cfg.queries, frac, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        let q = frac.sqrt();
        by_n.push(vec![
            n as f64,
            st.area,
            analysis::window_validity_area(n as f64, q, q),
        ]);
    }
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let mut by_qs = Table::new(
        "fig29b",
        "window V(q) area vs qs (uniform, N=100k), actual vs estimated",
        &["qs_frac", "actual", "estimated"],
    );
    for frac in cfg.window_fractions() {
        let windows: Vec<Rect> = window_queries_frac(&data, cfg.queries, frac, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        let q = frac.sqrt();
        by_qs.push(vec![
            frac,
            st.area,
            analysis::window_validity_area(n as f64, q, q),
        ]);
    }
    vec![by_n, by_qs]
}

/// Shared qs-sweep over a real dataset (Figs. 30, 32, 35 read different
/// columns).
pub fn real_dataset_qs_sweep(cfg: &ExpConfig, data: &Dataset) -> Table {
    let tree = build_tree(data);
    let hist = Minskew::paper(&data.points(), data.universe);
    let mut t = Table::new(
        &format!("qsweep-{}", data.name),
        &format!("window qs sweep over {}", data.name),
        &[
            "qs_km2",
            "area_m2",
            "area_est_m2",
            "inner",
            "outer",
            "na_result",
            "na_outer",
            "pa_result",
            "pa_outer",
        ],
    );
    let side = data.universe.width();
    for km2 in cfg.window_km2() {
        let qs_m2 = km2 * 1e6;
        let windows = window_queries(data, cfg.queries, qs_m2, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        let est = mean(
            &windows
                .iter()
                .map(|w| {
                    let n_eff = hist.effective_cardinality_window(w).max(1.0);
                    analysis::window_validity_area(n_eff, w.width() / side, w.height() / side)
                        * data.universe.area()
                })
                .collect::<Vec<_>>(),
        );
        t.push(vec![
            km2,
            st.area,
            est,
            st.inner,
            st.outer,
            st.na_result,
            st.na_outer,
            st.pa_result,
            st.pa_outer,
        ]);
    }
    t
}

/// Fig. 30 — window V(q) area vs qs on GR and NA.
pub fn fig30(cfg: &ExpConfig) -> Vec<Table> {
    let gr = lbq_data::gr_like_sized(cfg.gr_n(), cfg.seed);
    let na = lbq_data::na_like_sized(cfg.na_n(), cfg.seed);
    [gr, na]
        .into_iter()
        .map(|d| {
            let mut t = real_dataset_qs_sweep(cfg, &d);
            t.id = format!("fig30-{}", d.name);
            t.caption = format!("window V(q) area vs qs ({}), actual vs estimated", d.name);
            t
        })
        .collect()
}

/// Fig. 31 — window |S_inf| (inner/outer split) vs N and vs qs
/// (uniform; ≈2+2).
pub fn fig31(cfg: &ExpConfig) -> Vec<Table> {
    let mut by_n = Table::new(
        "fig31a",
        "window |Sinf| vs N (uniform, qs=0.1%); ~2 inner + ~2 outer",
        &["n", "inner", "outer"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let windows = window_queries_frac(&data, cfg.queries, 0.001, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        by_n.push(vec![n as f64, st.inner, st.outer]);
    }
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let mut by_qs = Table::new(
        "fig31b",
        "window |Sinf| vs qs (uniform, N=100k)",
        &["qs_frac", "inner", "outer"],
    );
    for frac in cfg.window_fractions() {
        let windows = window_queries_frac(&data, cfg.queries, frac, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        by_qs.push(vec![frac, st.inner, st.outer]);
    }
    vec![by_n, by_qs]
}

/// Fig. 32 — window |S_inf| vs qs on GR and NA.
pub fn fig32(cfg: &ExpConfig) -> Vec<Table> {
    fig30(cfg)
        .into_iter()
        .map(|mut t| {
            t.id = t.id.replace("fig30", "fig32");
            t.caption = t
                .caption
                .replace("window V(q) area", "window |Sinf| (inner/outer)");
            t
        })
        .collect()
}

/// Fig. 34 — window cost vs N (uniform): NA split result-query vs
/// outer-candidate query, and PA with the 10% buffer.
pub fn fig34(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "fig34",
        "window cost vs N (uniform, qs=0.1%): NA/PA result vs inf-objs query",
        &["n", "na_result", "na_outer", "pa_result", "pa_outer"],
    );
    for n in cfg.cardinalities() {
        let data = uniform_unit(n, cfg.seed);
        let tree = build_tree(&data);
        let windows = window_queries_frac(&data, cfg.queries, 0.001, cfg.seed);
        let st = run_window_workload(&tree, data.universe, &windows);
        t.push(vec![
            n as f64,
            st.na_result,
            st.na_outer,
            st.pa_result,
            st.pa_outer,
        ]);
    }
    t
}

/// Fig. 35 — window PA vs qs on GR and NA.
pub fn fig35(cfg: &ExpConfig) -> Vec<Table> {
    fig30(cfg)
        .into_iter()
        .map(|mut t| {
            t.id = t.id.replace("fig30", "fig35");
            t.caption = t
                .caption
                .replace("window V(q) area vs qs", "window PA vs qs (10% LRU)");
            t
        })
        .collect()
}

// -------------------------------------------------- beyond the paper

/// Mobile-client simulation: server queries per 1000 steps for every
/// strategy (the paper's motivating metric, Section 1).
pub fn fig_savings(cfg: &ExpConfig) -> Table {
    use lbq_core::baselines::Zl01Server;
    use lbq_core::client::{random_waypoint, simulate_nn, NnStrategy};
    let n = ((100_000.0 * cfg.scale) as usize).clamp(1_000, 20_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let zl = Zl01Server::build(&data.items, data.universe);
    let steps = (cfg.queries * 2).max(200);
    let traj = random_waypoint(
        data.universe,
        Point::new(0.5, 0.5),
        steps,
        0.2 / (n as f64).sqrt(), // a fraction of the typical NN distance
        cfg.seed,
    );
    let mut t = Table::new(
        "savings",
        "server queries/payload per trajectory (k=1); strategy: 0=naive 1=lbq 2=sr01(m=6) 3=zl01 4=tp 5=lbq-delta",
        &["strategy", "queries", "objects_shipped", "savings_pct"],
    );
    for (code, strat) in [
        (0.0, NnStrategy::Naive),
        (1.0, NnStrategy::Lbq),
        (2.0, NnStrategy::Sr01 { m: 6 }),
        (3.0, NnStrategy::Zl01),
        (4.0, NnStrategy::Tp),
        (5.0, NnStrategy::LbqDelta),
    ] {
        let r = simulate_nn(&tree, data.universe, &traj, 1, strat, Some(&zl));
        t.push(vec![
            code,
            r.server_queries as f64,
            r.objects_shipped as f64,
            r.savings_ratio() * 100.0,
        ]);
    }
    t
}

/// Ablation: loose vs exact TPNN entry bound — node accesses per
/// influence-set retrieval and per-query wall time.
pub fn ablation_tpnn_bound(cfg: &ExpConfig) -> Table {
    use lbq_rtree::{Item as RItem, TpEvent};
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut t = Table::new(
        "ablation-tpnn",
        "TPNN entry bound: loose (O(1)) vs exact (piecewise quadratic)",
        &["bound", "na_per_tpnn", "events_found"],
    );
    for (code, bound) in [
        (0.0, lbq_rtree::TpBound::Loose),
        (1.0, lbq_rtree::TpBound::Exact),
    ] {
        let mut na = 0u64;
        let mut count = 0u64;
        let mut events = 0u64;
        for &q in &queries {
            let inner: Vec<RItem> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
            let (found, s) = tree.with_stats(|t| {
                let mut found = 0u64;
                for dir_i in 0..4 {
                    let theta = dir_i as f64 * std::f64::consts::FRAC_PI_2 + 0.3;
                    let ev: Option<TpEvent> = t.tp_knn_with_bound(
                        q,
                        lbq_geom::Vec2::from_angle(theta),
                        0.5,
                        &inner,
                        bound,
                    );
                    found += ev.is_some() as u64;
                    count += 1;
                }
                found
            });
            events += found;
            na += s.node_accesses;
        }
        t.push(vec![code, na as f64 / count as f64, events as f64]);
    }
    t
}

/// Ablation: buffer fraction vs per-query PA for location-based NN.
pub fn ablation_buffer(cfg: &ExpConfig) -> Table {
    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let data = uniform_unit(n, cfg.seed);
    let tree = build_tree(&data);
    let queries: Vec<Point> = paper_query_points(&data, cfg.seed)
        .into_iter()
        .take(cfg.queries)
        .collect();
    let mut t = Table::new(
        "ablation-buffer",
        "PA per location-based NN query vs LRU buffer fraction",
        &["buffer_frac", "pa_total", "na_total"],
    );
    for frac in [0.01, 0.05, 0.1, 0.25, 0.5] {
        tree.set_buffer_fraction(frac);
        let mut pa = 0u64;
        let mut na = 0u64;
        for &q in &queries {
            let (_, s) = tree.with_stats(|t| {
                let inner: Vec<Item> = t.knn(q, 1).into_iter().map(|(i, _)| i).collect();
                let _ = retrieve_influence_set(t, q, &inner, data.universe);
            });
            pa += s.page_faults;
            na += s.node_accesses;
        }
        tree.clear_buffer();
        t.push(vec![
            frac,
            pa as f64 / queries.len() as f64,
            na as f64 / queries.len() as f64,
        ]);
    }
    t
}

/// Runs a figure by id. Panics on unknown ids (the binary validates).
pub fn run_figure(id: &str, cfg: &ExpConfig) -> Vec<Table> {
    match id {
        "22a" => vec![fig22a(cfg)],
        "22b" => vec![fig22b(cfg)],
        "23" => fig23(cfg),
        "24" => fig24(cfg),
        "25" => fig25(cfg),
        "26" => fig26(cfg),
        "27" => vec![fig27(cfg)],
        "28" => fig28(cfg),
        "29" => fig29(cfg),
        "30" => fig30(cfg),
        "31" => fig31(cfg),
        "32" => fig32(cfg),
        "34" => vec![fig34(cfg)],
        "35" => fig35(cfg),
        "savings" => vec![fig_savings(cfg)],
        "ablation-tpnn" => vec![ablation_tpnn_bound(cfg)],
        "ablation-buffer" => vec![ablation_buffer(cfg)],
        other => panic!("unknown figure id: {other}"),
    }
}

/// All runnable figure ids, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "22a",
        "22b",
        "23",
        "24",
        "25",
        "26",
        "27",
        "28",
        "29",
        "30",
        "31",
        "32",
        "34",
        "35",
        "savings",
        "ablation-tpnn",
        "ablation-buffer",
    ]
}

/// Runs the whole evaluation, sharing the expensive real-dataset sweeps
/// between the figures that read different columns of them (23/26/28
/// share the k-sweep; 30/32/35 share the qs-sweep).
pub fn run_all(cfg: &ExpConfig) -> Vec<Table> {
    let mut out = Vec::new();
    out.push(fig22a(cfg));
    out.push(fig22b(cfg));

    // One k-sweep per real dataset feeds Figs. 23, 26, 28.
    let gr = lbq_data::gr_like_sized(cfg.gr_n(), cfg.seed);
    let na = lbq_data::na_like_sized(cfg.na_n(), cfg.seed);
    let sweeps: Vec<Table> = [&gr, &na]
        .into_iter()
        .map(|d| real_dataset_k_sweep(cfg, d))
        .collect();
    for (fig, what) in [
        ("fig23", "area of V(q) vs k"),
        ("fig26", "|Sinf| vs k"),
        ("fig28", "NA and PA vs k (10% LRU)"),
    ] {
        for s in &sweeps {
            let mut t = s.clone();
            t.id = s.id.replace("ksweep", fig);
            t.caption = format!("{what} ({})", s.caption);
            out.push(t);
        }
    }

    out.extend(fig24(cfg));
    out.extend(fig25(cfg));
    out.push(fig27(cfg));
    out.extend(fig29(cfg));

    // One qs-sweep per real dataset feeds Figs. 30, 32, 35.
    let qsweeps: Vec<Table> = [&gr, &na]
        .into_iter()
        .map(|d| real_dataset_qs_sweep(cfg, d))
        .collect();
    for (fig, what) in [
        ("fig30", "window V(q) area vs qs"),
        ("fig32", "window |Sinf| vs qs"),
        ("fig35", "window PA vs qs (10% LRU)"),
    ] {
        for s in &qsweeps {
            let mut t = s.clone();
            t.id = s.id.replace("qsweep", fig);
            t.caption = format!("{what} ({})", s.caption);
            out.push(t);
        }
    }

    out.extend(fig31(cfg));
    out.push(fig34(cfg));
    out.push(fig_savings(cfg));
    out.push(ablation_tpnn_bound(cfg));
    out.push(ablation_buffer(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            queries: 25,
            scale: 0.1,
            seed: 7,
        }
    }

    fn micro() -> ExpConfig {
        ExpConfig {
            queries: 15,
            scale: 0.01,
            seed: 7,
        }
    }

    #[test]
    fn fig22a_shape_linear_in_inverse_n() {
        let t = fig22a(&micro());
        let ns = t.column("n");
        let actual = t.column("actual");
        let est = t.column("estimated");
        // Area drops as N grows (both series).
        for w in actual.windows(2) {
            assert!(w[1] < w[0], "actual not decreasing: {actual:?}");
        }
        // Estimate within 2.5× of actual everywhere (paper: "accurate").
        for i in 0..ns.len() {
            let ratio = actual[i] / est[i];
            assert!((0.4..2.5).contains(&ratio), "n={} ratio {ratio}", ns[i]);
        }
    }

    #[test]
    fn fig22b_shape_drops_with_k() {
        // tiny() rather than micro(): at n = 1k the k = 100 cell covers
        // 10% of the dataset and boundary clipping drowns the trend.
        let t = fig22b(&tiny());
        let actual = t.column("actual");
        for w in actual.windows(2) {
            assert!(w[1] < w[0], "area must shrink with k: {actual:?}");
        }
    }

    #[test]
    fn fig24_25_shapes() {
        let cfg = micro();
        let t = fig24(&cfg);
        for edges in t[0]
            .column("edges")
            .iter()
            .chain(t[1].column("edges").iter())
        {
            assert!((3.5..9.0).contains(edges), "~6 edges expected, got {edges}");
        }
        let t = fig25(&cfg);
        for sinf in t[0].column("sinf") {
            assert!(
                (3.5..9.0).contains(&sinf),
                "~6 influence objects, got {sinf}"
            );
        }
        // |Sinf| at k=100 below |Sinf| at k=1 (pairs share outers).
        let by_k = &t[1];
        let sinf = by_k.column("sinf");
        assert!(sinf.last().unwrap() <= &(sinf[0] + 1.0));
    }

    #[test]
    fn fig27_buffer_collapses_tpnn_cost() {
        let t = fig27(&tiny());
        for row in &t.rows {
            let n = row[t.col("n")];
            if n < 5_000.0 {
                continue; // buffer degenerates to ~1 page at toy sizes
            }
            let (na_nn, na_tp, pa_tp) = (
                row[t.col("na_nn")],
                row[t.col("na_tp")],
                row[t.col("pa_tp")],
            );
            // TPNN phase reads many more nodes than the single NN query…
            assert!(na_tp > na_nn, "na_tp {na_tp} vs na_nn {na_nn}");
            // …but the warm buffer absorbs nearly all of it.
            assert!(
                pa_tp < na_tp * 0.5,
                "buffer should absorb: pa {pa_tp} na {na_tp}"
            );
        }
    }

    #[test]
    fn fig29_estimates_track_measurement() {
        let t = fig29(&tiny());
        for tab in &t {
            let xs = tab.column(&tab.columns[0]);
            let actual = tab.column("actual");
            let est = tab.column("estimated");
            let n_base = 10_000.0; // tiny() N for fig29b
            for i in 0..actual.len() {
                // The sweeping-region model assumes windows that hold
                // several points (n·qs ≳ 5), as in all the paper's
                // configurations; skip out-of-regime toy rows.
                let nqs = if tab.id == "fig29a" {
                    xs[i] * 0.001
                } else {
                    n_base * xs[i]
                };
                if actual[i] > 0.0 && nqs >= 5.0 {
                    let ratio = est[i] / actual[i];
                    assert!(
                        (0.3..3.0).contains(&ratio),
                        "{}: row {i} ratio {ratio}",
                        tab.id
                    );
                }
            }
            // Monotone decreasing in both sweeps.
            for w in actual.windows(2) {
                assert!(w[1] <= w[0] * 1.2, "{}: not decreasing {actual:?}", tab.id);
            }
        }
    }

    #[test]
    fn fig31_inner_outer_around_two() {
        let t = fig31(&micro());
        for tab in &t {
            for (i, o) in tab.column("inner").iter().zip(tab.column("outer")) {
                assert!((0.5..4.5).contains(i), "inner {i}");
                assert!((0.0..6.0).contains(&o), "outer {o}");
            }
        }
    }

    #[test]
    fn fig34_second_query_cheap_with_buffer() {
        let t = fig34(&tiny());
        for row in &t.rows {
            if row[t.col("n")] < 5_000.0 {
                continue; // toy buffers thrash
            }
            let (na2, pa2) = (row[t.col("na_outer")], row[t.col("pa_outer")]);
            assert!(
                pa2 <= na2 * 0.8 + 0.5,
                "outer query should be mostly buffered: pa {pa2} na {na2}"
            );
        }
    }

    #[test]
    fn savings_simulation_orders_strategies() {
        let t = fig_savings(&micro());
        let queries = t.column("queries");
        // Row 0 is Naive — the ceiling; every cached strategy is below.
        for (i, q) in queries.iter().enumerate().skip(1) {
            assert!(
                q < &queries[0],
                "strategy {i} did not save: {q} vs {}",
                queries[0]
            );
        }
    }

    #[test]
    fn all_ids_run() {
        // Smoke: the registry is consistent (cheap figures only).
        let cfg = ExpConfig {
            queries: 5,
            scale: 0.01,
            seed: 1,
        };
        for id in ["22a", "27", "31", "savings", "ablation-buffer"] {
            let tables = run_figure(id, &cfg);
            assert!(!tables.is_empty());
            for t in tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
            }
        }
    }
}
