//! The "before" baseline for the `pr4_bench` harness: the array-of-
//! structs node layout and per-query allocation behavior the workspace
//! had before the SoA + [`lbq_rtree::QueryScratch`] change.
//!
//! This is a deliberate, self-contained fossil. It mirrors the old
//! `lbq-rtree` code paths closely enough that the before/after numbers
//! in `BENCH_PR4.json` isolate the layout and allocation changes:
//!
//! * nodes store a `Vec<LegacyEntry>` of enum slots (MBR materialized
//!   per entry via `mbr()`), exactly the old representation;
//! * bulk load is the same STR tiling with the same 70% fill, so tree
//!   *shape* matches what `RTree::bulk_load` produces for the same
//!   items and config — the comparison never conflates structure with
//!   layout;
//! * kNN keeps the old `BinaryHeap` + `HashMap` candidate bookkeeping
//!   (fresh per query), TPNN allocates a fresh priority queue per call,
//!   the window query allocates its result vector per call;
//! * node accesses are metered with the same two relaxed atomic adds
//!   the live tree performs in `access()`, so neither side gets a free
//!   ride on instrumentation.
//!
//! Only the loose TPNN pruning bound is ported — it is the default on
//! both sides and the only bound the validity-region chain uses.

use lbq_geom::{ConvexPolygon, HalfPlane, Point, Rect, Vec2};
use lbq_rtree::{Item, OrdF64, RTreeConfig, TpEvent, DEFAULT_BULK_FILL};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// One slot of a legacy node — the old enum-per-entry representation.
#[derive(Debug, Clone)]
pub enum LegacyEntry {
    /// Internal entry: child index and its bounding rectangle.
    Child {
        /// Child MBR.
        mbr: Rect,
        /// Arena index of the child.
        node: usize,
    },
    /// Leaf entry: a data point.
    Leaf(Item),
}

impl LegacyEntry {
    /// The MBR of the entry (degenerate rectangle for a point) —
    /// materialized per call, as the old layout did.
    #[inline]
    fn mbr(&self) -> Rect {
        match self {
            LegacyEntry::Child { mbr, .. } => *mbr,
            LegacyEntry::Leaf(item) => Rect::from_point(item.point),
        }
    }

    #[inline]
    fn child(&self) -> usize {
        match self {
            LegacyEntry::Child { node, .. } => *node,
            LegacyEntry::Leaf(_) => panic!("child() on a leaf entry"),
        }
    }

    #[inline]
    fn item(&self) -> Item {
        match self {
            LegacyEntry::Leaf(item) => *item,
            LegacyEntry::Child { .. } => panic!("item() on an internal entry"),
        }
    }
}

/// A legacy node: level plus a single heterogeneous entry vector.
#[derive(Debug, Clone)]
pub struct LegacyNode {
    /// 0 for leaves, increasing toward the root.
    pub level: u32,
    /// The old AoS slot list.
    pub entries: Vec<LegacyEntry>,
}

impl LegacyNode {
    fn mbr(&self) -> Option<Rect> {
        let mut it = self.entries.iter();
        let mut r = it.next()?.mbr();
        for e in it {
            r.expand_to_rect(&e.mbr());
        }
        Some(r)
    }
}

/// The pre-change tree: an arena of AoS nodes with the same STR packing
/// as the live `RTree`, metered with the same two relaxed atomics per
/// node access.
#[derive(Debug)]
pub struct LegacyTree {
    nodes: Vec<LegacyNode>,
    root: usize,
    len: usize,
    node_accesses: AtomicU64,
    page_touches: AtomicU64,
}

impl LegacyTree {
    /// STR bulk load with the default 70% fill — the same tiling the
    /// live tree uses, so both sides of the benchmark traverse
    /// identically shaped trees.
    pub fn bulk_load(items: Vec<Item>, config: RTreeConfig) -> Self {
        let mut tree = LegacyTree {
            nodes: Vec::new(),
            root: 0,
            len: items.len(),
            node_accesses: AtomicU64::new(0),
            page_touches: AtomicU64::new(0),
        };
        if items.is_empty() {
            tree.nodes.push(LegacyNode {
                level: 0,
                entries: Vec::new(),
            });
            return tree;
        }
        let node_cap = ((config.max_entries as f64 * DEFAULT_BULK_FILL).round() as usize)
            .clamp(config.min_entries.max(2), config.max_entries);
        let leaf_entries: Vec<LegacyEntry> = items.into_iter().map(LegacyEntry::Leaf).collect();
        let mut level_nodes = pack_level(&mut tree, leaf_entries, 0, node_cap, &config);
        let mut level = 1;
        while level_nodes.len() > 1 {
            level_nodes = pack_level(&mut tree, level_nodes, level, node_cap, &config);
            level += 1;
        }
        tree.root = level_nodes[0].child();
        tree
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node accesses metered so far (parity with `RTree` stats).
    pub fn node_accesses(&self) -> u64 {
        self.node_accesses.load(Ordering::Relaxed)
    }

    #[inline]
    fn access(&self, _id: usize) {
        self.node_accesses.fetch_add(1, Ordering::Relaxed);
        self.page_touches.fetch_add(1, Ordering::Relaxed);
    }

    /// Replicates the old `finish_query_span` epilogue: feed the global
    /// NA/PA counters with this query's delta. The pre-change code paid
    /// this on every query, so the baseline must too.
    fn finish_query(&self, span: &mut lbq_obs::Span, na_before: u64) {
        let delta = self.node_accesses() - na_before;
        na_pa_counters().0.add(delta);
        na_pa_counters().1.add(delta);
        if span.is_active() {
            span.record("na", delta);
        }
    }

    /// Best-first kNN, old implementation: a fresh min-heap of nodes, a
    /// fresh max-heap of the best k, and a `HashMap` from id to
    /// candidate — all allocated per query — followed by a collect and
    /// sort of the output vector.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(Item, f64)> {
        let mut span = lbq_obs::span("rtree-knn");
        let na_before = self.node_accesses();
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut queue: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF64, u64)> = BinaryHeap::new();
        let mut best_items: HashMap<u64, (f64, Item)> = HashMap::new();
        queue.push(Reverse((OrdF64::new(0.0), self.root)));

        let worst = |best: &BinaryHeap<(OrdF64, u64)>| -> f64 {
            best.peek().map_or(f64::INFINITY, |(d, _)| d.0)
        };

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            if best.len() == k && lb >= worst(&best) {
                break;
            }
            self.access(node_id);
            let node = &self.nodes[node_id];
            if node.level == 0 {
                for e in &node.entries {
                    let item = e.item();
                    let d = q.dist_sq(item.point);
                    if best.len() < k {
                        best.push((OrdF64::new(d), item.id));
                        best_items.insert(item.id, (d, item));
                    } else if d < worst(&best) {
                        if let Some((_, evicted)) = best.pop() {
                            best_items.remove(&evicted);
                        }
                        best.push((OrdF64::new(d), item.id));
                        best_items.insert(item.id, (d, item));
                    }
                }
            } else {
                for e in &node.entries {
                    let lb = e.mbr().mindist_sq(q);
                    if best.len() < k || lb < worst(&best) {
                        queue.push(Reverse((OrdF64::new(lb), e.child())));
                    }
                }
            }
        }
        let mut out: Vec<(Item, f64)> = best_items
            .into_values()
            .map(|(d, item)| (item, d.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        span.record("k", k);
        span.record("results", out.len());
        self.finish_query(&mut span, na_before);
        out
    }

    /// Old recursive window query, allocating the output vector fresh.
    pub fn window(&self, q: &Rect) -> Vec<Item> {
        let mut span = lbq_obs::span("rtree-window");
        let na_before = self.node_accesses();
        let mut out = Vec::new();
        self.window_into(self.root, q, &mut out);
        span.record("results", out.len());
        self.finish_query(&mut span, na_before);
        out
    }

    fn window_into(&self, node_id: usize, q: &Rect, out: &mut Vec<Item>) {
        self.access(node_id);
        let node = &self.nodes[node_id];
        if node.level == 0 {
            out.extend(
                node.entries
                    .iter()
                    .map(|e| e.item())
                    .filter(|item| q.contains(item.point)),
            );
            return;
        }
        for e in &node.entries {
            if e.mbr().intersects(q) {
                self.window_into(e.child(), q, out);
            }
        }
    }

    /// Old TPNN (loose bound): fresh priority queue per call, enum
    /// entry scan with per-slot `mbr()` materialization.
    pub fn tp_knn(&self, q: Point, dir: Vec2, t_max: f64, inner: &[Item]) -> Option<TpEvent> {
        assert!(!inner.is_empty(), "TP query needs the current result set");
        let mut span = lbq_obs::span("rtree-tpnn");
        let na_before = self.node_accesses();
        let d_max = inner.iter().map(|o| q.dist(o.point)).fold(0.0f64, f64::max);
        let entry_bound = |mbr: &Rect| -> f64 { ((mbr.mindist(q) - d_max) * 0.5).max(0.0) };

        let mut queue: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
        queue.push(Reverse((OrdF64::new(0.0), self.root)));
        let mut best: Option<TpEvent> = None;

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
            if lb > horizon {
                break;
            }
            self.access(node_id);
            let node = &self.nodes[node_id];
            if node.level == 0 {
                for e in &node.entries {
                    let item = e.item();
                    if inner.iter().any(|o| o.id == item.id) {
                        continue;
                    }
                    if let Some((t, partner)) = influence_time(q, dir, item.point, inner) {
                        let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
                        let better = t < horizon
                            || (t <= horizon
                                && best
                                    .as_ref()
                                    .is_some_and(|b| t == b.time && item.id < b.object.id));
                        if t <= t_max && better {
                            best = Some(TpEvent {
                                object: item,
                                partner,
                                time: t,
                            });
                        }
                    }
                }
            } else {
                for e in &node.entries {
                    let lb = entry_bound(&e.mbr());
                    let horizon = best.as_ref().map_or(t_max, |ev| ev.time.min(t_max));
                    if lb <= horizon {
                        queue.push(Reverse((OrdF64::new(lb), e.child())));
                    }
                }
            }
        }
        span.record("inner", inner.len());
        span.record("found", best.is_some());
        self.finish_query(&mut span, na_before);
        best
    }

    /// The pre-change influence-set retrieval (paper Figs. 10/12): the
    /// same vertex-confirmation loop as `lbq_core`, driven by the
    /// allocating [`LegacyTree::tp_knn`]. Returns the influence pairs
    /// (inner, outer), the region polygon, and the TPNN query count.
    pub fn retrieve_influence_set(
        &self,
        q: Point,
        inner: &[Item],
        universe: Rect,
    ) -> (Vec<(Item, Item)>, ConvexPolygon, usize) {
        assert!(!inner.is_empty(), "kNN result must be non-empty");
        let mut span = lbq_obs::span("nn-influence-set");
        span.record("k", inner.len());
        if self.len() <= inner.len() {
            return (Vec::new(), ConvexPolygon::from_rect(&universe), 0);
        }
        let eps = lbq_geom::EPS * universe.width().max(universe.height()).max(1.0);
        let mut pairs: Vec<(Item, Item)> = Vec::new();
        let mut polygon = ConvexPolygon::from_rect(&universe);
        let mut vertices: Vec<(Point, bool)> =
            polygon.vertices().iter().map(|&v| (v, false)).collect();
        let mut tpnn_count = 0usize;

        // Same nearest-vertex-first probe order as the live pipeline, so
        // the before/after comparison is layouts, not algorithms.
        while let Some(idx) = vertices
            .iter()
            .enumerate()
            .filter(|(_, (_, confirmed))| !confirmed)
            .min_by(|(_, (a, _)), (_, (b, _))| {
                q.dist_sq(*a)
                    .partial_cmp(&q.dist_sq(*b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        {
            let v = vertices[idx].0;
            let Some(dir) = q.to(v).normalized() else {
                vertices[idx].1 = true;
                continue;
            };
            let t_max = q.dist(v);
            tpnn_count += 1;
            let event = self.tp_knn(q, dir, t_max, inner);
            if lbq_obs::enabled() {
                lbq_obs::event_with(
                    "tpnn-iteration",
                    [
                        ("vertices", lbq_obs::Value::from(vertices.len())),
                        ("pairs", lbq_obs::Value::from(pairs.len())),
                        ("found", lbq_obs::Value::from(event.is_some())),
                    ],
                );
            }
            match event {
                None => {
                    vertices[idx].1 = true;
                }
                Some(ev) => {
                    let known = pairs
                        .iter()
                        .any(|(i, o)| i.id == ev.partner.id && o.id == ev.object.id);
                    if known {
                        vertices[idx].1 = true;
                    } else {
                        let hp = HalfPlane::bisector(ev.partner.point, ev.object.point);
                        let clipped = polygon.clip(&hp);
                        pairs.push((ev.partner, ev.object));
                        if clipped.is_empty() {
                            polygon = clipped;
                            vertices.clear();
                            break;
                        }
                        let old = std::mem::take(&mut vertices);
                        vertices = clipped
                            .vertices()
                            .iter()
                            .map(|&nv| {
                                let confirmed = old.iter().any(|(ov, c)| *c && ov.dist(nv) <= eps);
                                (nv, confirmed)
                            })
                            .collect();
                        polygon = clipped;
                    }
                }
            }
        }
        (pairs, polygon, tpnn_count)
    }

    /// The pre-change kNN-with-validity pipeline (kNN then influence
    /// set), used as the sequential "before" of the serve-batch entry.
    pub fn knn_with_validity(
        &self,
        q: Point,
        k: usize,
        universe: Rect,
    ) -> (Vec<Item>, Vec<(Item, Item)>, ConvexPolygon) {
        let result: Vec<Item> = self.knn(q, k).into_iter().map(|(i, _)| i).collect();
        if result.is_empty() {
            return (result, Vec::new(), ConvexPolygon::from_rect(&universe));
        }
        let (pairs, polygon, _) = self.retrieve_influence_set(q, &result, universe);
        (result, pairs, polygon)
    }
}

/// The global NA/PA counter pair the old `finish_query_span` fed
/// (cached handles, one registry lookup per process).
fn na_pa_counters() -> &'static (lbq_obs::Counter, lbq_obs::Counter) {
    use std::sync::OnceLock;
    static C: OnceLock<(lbq_obs::Counter, lbq_obs::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        (
            lbq_obs::counter("rtree-node-accesses"),
            lbq_obs::counter("rtree-page-faults"),
        )
    })
}

/// Influence time of point `p` against the inner set (port of the
/// rtree-internal helper; behaviorally identical).
fn influence_time(q: Point, dir: Vec2, p: Point, inner: &[Item]) -> Option<(f64, Item)> {
    let mut best: Option<(f64, Item)> = None;
    let dp_sq = q.dist_sq(p);
    for &o in inner {
        let f0 = dp_sq - q.dist_sq(o.point);
        let denom = 2.0 * dir.dot(o.point.to(p));
        let t = if f0 <= 0.0 {
            Some(0.0)
        } else if denom > 0.0 {
            Some(f0 / denom)
        } else {
            None
        };
        if let Some(t) = t {
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, o));
            }
        }
    }
    best
}

/// STR tiling, as the old bulk loader did it.
fn pack_level(
    tree: &mut LegacyTree,
    mut entries: Vec<LegacyEntry>,
    level: u32,
    cap: usize,
    config: &RTreeConfig,
) -> Vec<LegacyEntry> {
    let n = entries.len();
    if n <= cap {
        let node = LegacyNode { level, entries };
        let mbr = node.mbr().expect("non-empty pack");
        let id = tree.nodes.len();
        tree.nodes.push(node);
        return vec![LegacyEntry::Child { mbr, node: id }];
    }
    let node_count = n.div_ceil(cap);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = slice_count.max(1) * cap;

    let center = |e: &LegacyEntry| -> Point { e.mbr().center() };
    entries.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));

    let min = config.min_entries;
    let max = config.max_entries;
    let mut out = Vec::with_capacity(node_count);
    let mut rest = entries;
    while !rest.is_empty() {
        let mut take = slice_size.min(rest.len());
        if rest.len() - take > 0 && rest.len() - take < min {
            take = rest.len();
        }
        let mut slice: Vec<LegacyEntry> = rest.drain(..take).collect();
        slice.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        let mut remaining = slice;
        while !remaining.is_empty() {
            let take = chunk_size(remaining.len(), cap, min, max);
            let group: Vec<LegacyEntry> = remaining.drain(..take).collect();
            let node = LegacyNode {
                level,
                entries: group,
            };
            let mbr = node.mbr().expect("non-empty group");
            let id = tree.nodes.len();
            tree.nodes.push(node);
            out.push(LegacyEntry::Child { mbr, node: id });
        }
    }
    out
}

/// Next STR chunk size within the legal `[min, max]` occupancy range.
fn chunk_size(remaining: usize, target: usize, min: usize, max: usize) -> usize {
    if remaining <= target {
        remaining
    } else if remaining - target >= min {
        target
    } else if remaining <= max {
        remaining
    } else {
        remaining - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTree;

    fn random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(seed);
        (0..n)
            .map(|i| Item::new(Point::new(rng.gen_f64(), rng.gen_f64()), i as u64))
            .collect()
    }

    /// The legacy fossil must agree with the live tree on every query
    /// kind — otherwise the benchmark compares different algorithms,
    /// not different layouts.
    #[test]
    fn legacy_matches_live_tree() {
        let items = random_items(600, 42);
        let config = RTreeConfig::tiny();
        let live = RTree::bulk_load(items.clone(), config);
        let legacy = LegacyTree::bulk_load(items, config);
        let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut rng = lbq_rng::Xoshiro256ss::seed_from_u64(7);
        for _ in 0..50 {
            let q = Point::new(rng.gen_f64(), rng.gen_f64());
            // kNN.
            let a = live.knn(q, 5);
            let b = legacy.knn(q, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0.id, y.0.id);
                assert!((x.1 - y.1).abs() < 1e-12);
            }
            // Window.
            let w = Rect::new(q.x - 0.1, q.y - 0.1, q.x + 0.1, q.y + 0.1);
            let mut wa: Vec<u64> = live.window(&w).iter().map(|i| i.id).collect();
            let mut wb: Vec<u64> = legacy.window(&w).iter().map(|i| i.id).collect();
            wa.sort_unstable();
            wb.sort_unstable();
            assert_eq!(wa, wb);
            // TPNN + region.
            let inner: Vec<Item> = a.into_iter().map(|(i, _)| i).collect();
            let nn = &inner[..1];
            let ta = live.tp_knn(q, Vec2::new(1.0, 0.0), 0.5, nn);
            let tb = legacy.tp_knn(q, Vec2::new(1.0, 0.0), 0.5, nn);
            assert_eq!(ta.map(|e| e.object.id), tb.map(|e| e.object.id));
            let (la, _) = lbq_core::retrieve_influence_set(&live, q, nn, universe);
            let (lb, _, _) = legacy.retrieve_influence_set(q, nn, universe);
            assert_eq!(la.pairs.len(), lb.len());
            for (pa, (pi, po)) in la.pairs.iter().zip(&lb) {
                assert_eq!(pa.inner.id, pi.id);
                assert_eq!(pa.outer.id, po.id);
            }
        }
    }

    #[test]
    fn legacy_meters_accesses() {
        let legacy = LegacyTree::bulk_load(random_items(300, 9), RTreeConfig::tiny());
        let before = legacy.node_accesses();
        let _ = legacy.knn(Point::new(0.5, 0.5), 3);
        assert!(legacy.node_accesses() > before);
    }
}
