//! # lbq-bench — the experiment harness
//!
//! Regenerates **every figure of the paper's Section 6** (Figs. 22–35,
//! except the illustrative Fig. 33, which lives on as a unit test in
//! `lbq-core::window`). Each experiment is a plain function returning a
//! [`harness::Table`], so the test suite can assert the paper's *shapes*
//! (linear trends, ≈6 edges, 2+2 influence objects, buffer collapse)
//! and the `experiments` binary can print the tables for EXPERIMENTS.md.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p lbq-bench --bin experiments -- --all
//! cargo run --release -p lbq-bench --bin experiments -- --fig 22a --quick
//! ```
//!
//! `--quick` shrinks cardinalities and workloads ~10× for smoke runs;
//! EXPERIMENTS.md records full-scale numbers.

pub mod figures;
pub mod harness;
pub mod jsonv;
pub mod legacy;
pub mod microbench;

pub use harness::{ExpConfig, Table};
