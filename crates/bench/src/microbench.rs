//! Minimal std-only micro-benchmark runner.
//!
//! The build environment has no crates.io access, so the former
//! criterion benches are plain `harness = false` mains built on this
//! module: warm up, take a fixed number of wall-clock samples with
//! [`std::time::Instant`], and report min/median/mean. No statistical
//! machinery — the numbers are indicative, the paper's real cost metric
//! (node accesses / page faults) is measured in the figure harness.

use std::hint::black_box;
use std::time::Instant;

/// Samples per benchmark (criterion's default is 100; we keep runs
/// short by default and let `heavy-tests` lengthen them).
fn samples() -> usize {
    if cfg!(feature = "heavy-tests") {
        50
    } else {
        15
    }
}

/// One timed result, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest observed sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Arithmetic mean over all samples.
    pub mean_ns: f64,
}

/// Times `f`, auto-calibrating the per-sample iteration count so each
/// sample lasts roughly 10 ms, and prints one aligned report line.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Sample {
    // Calibrate: grow the iteration count until a batch takes >= 1 ms.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let el = t.elapsed();
        if el.as_secs_f64() >= 1e-3 || iters >= 1 << 20 {
            // Scale so one sample lasts ~10 ms.
            let per = el.as_secs_f64() / iters as f64;
            // lbq-check: allow(local-epsilon) — division floor, not a tolerance
            iters = ((10e-3 / per.max(1e-12)) as u64).clamp(1, 1 << 24);
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples())
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let s = Sample {
        min_ns: per_iter[0],
        median_ns: per_iter[per_iter.len() / 2],
        mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
    };
    println!(
        "{name:<44} {:>12}/iter  (min {}, mean {})",
        fmt_ns(s.median_ns),
        fmt_ns(s.min_ns),
        fmt_ns(s.mean_ns)
    );
    s
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_sane_stats() {
        let mut x = 0u64;
        let s = bench("noop-ish", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns + 1e-9);
        assert!(s.median_ns.is_finite() && s.mean_ns.is_finite());
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12e9).ends_with("s"));
    }
}
