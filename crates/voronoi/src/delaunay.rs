//! Incremental (Bowyer–Watson) Delaunay triangulation.
//!
//! Construction inserts one site at a time: locate the triangle
//! containing the site by walking the adjacency graph, flood-fill the
//! set of triangles whose circumcircle contains it (the *cavity*),
//! delete them, and fan new triangles from the site to the cavity
//! boundary. Expected O(n log n) on shuffled input, O(n²) worst case —
//! ample for the baseline and ground-truth roles this crate plays.
//!
//! A "super-triangle" far outside the universe bootstraps the process;
//! its vertices are excluded from all public answers.

use lbq_geom::{orient, ConvexPolygon, HalfPlane, Point, Rect};

/// One triangle: vertex indices (CCW) and the neighbor across the edge
/// *opposite* each vertex (`neighbors[i]` faces edge
/// `(v[(i+1)%3], v[(i+2)%3])`).
#[derive(Debug, Clone, Copy)]
struct Tri {
    v: [usize; 3],
    neighbors: [Option<usize>; 3],
    alive: bool,
}

/// A Delaunay triangulation of a point set.
#[derive(Debug, Clone)]
pub struct Delaunay {
    /// Sites followed by the 3 super-triangle vertices.
    pub(crate) points: Vec<Point>,
    pub(crate) n_sites: usize,
    pub(crate) universe: Rect,
    tris: Vec<Tri>,
    free: Vec<usize>,
    hint: usize,
    /// `dup[i]`: index of the representative site if site `i` duplicates
    /// an earlier one (within 1e-12 of universe scale), else `i`.
    pub(crate) dup: Vec<usize>,
    /// Adjacency lists over sites (built once after insertion).
    pub(crate) adjacency: Vec<Vec<usize>>,
}

impl Delaunay {
    /// Triangulates `sites`; `universe` is used both to scale the
    /// super-triangle and to clip Voronoi cells later.
    pub fn build(sites: &[Point], universe: Rect) -> Self {
        let n = sites.len();
        let mut points = sites.to_vec();
        for p in &points {
            assert!(p.is_finite(), "cannot triangulate a non-finite point");
        }
        // Super-triangle: an equilateral triangle comfortably containing
        // every site and the universe.
        let mut bound = universe;
        if let Some(data_bb) = Rect::bounding(sites) {
            bound.expand_to_rect(&data_bb);
        }
        let c = bound.center();
        let r = 50.0 * (bound.width().max(bound.height()).max(lbq_geom::EPS));
        let sv = [
            Point::new(c.x, c.y + 2.0 * r),
            Point::new(c.x - 1.7320508 * r, c.y - r),
            Point::new(c.x + 1.7320508 * r, c.y - r),
        ];
        points.extend_from_slice(&sv);
        let sv_idx = [n, n + 1, n + 2];

        let mut d = Delaunay {
            points,
            n_sites: n,
            universe,
            tris: vec![Tri {
                v: sv_idx,
                neighbors: [None; 3],
                alive: true,
            }],
            free: Vec::new(),
            hint: 0,
            dup: (0..n).collect(),
            adjacency: Vec::new(),
        };
        // Orientation of the bootstrap triangle must be CCW.
        debug_assert!(orient(sv[0], sv[1], sv[2]) > 0.0);

        let scale = bound.width().max(bound.height()).max(1.0);
        let dup_eps = lbq_geom::EPS_TIGHT * scale;
        let mut seen: Vec<usize> = Vec::new();
        for i in 0..n {
            // Exact-duplicate handling: map to the first occurrence; the
            // triangulation only stores distinct sites.
            if let Some(&rep) = seen
                .iter()
                .find(|&&j| d.points[j].dist(d.points[i]) <= dup_eps)
            {
                d.dup[i] = rep;
                continue;
            }
            seen.push(i);
            d.insert(i);
        }
        d.build_adjacency();
        d
    }

    /// Number of (original, possibly duplicated) sites.
    pub fn len(&self) -> usize {
        self.n_sites
    }

    /// `true` when the triangulation has no sites.
    pub fn is_empty(&self) -> bool {
        self.n_sites == 0
    }

    /// The Delaunay neighbors of site `i` (duplicates resolved to their
    /// representative; super-triangle vertices excluded).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[self.dup[i]]
    }

    /// The Voronoi cell of site `i`, clipped to the universe.
    ///
    /// Dual construction: intersect the half-planes toward each Delaunay
    /// neighbor. For sites on the hull the super-vertices are skipped;
    /// the universe rectangle bounds the otherwise-unbounded cell.
    pub fn voronoi_cell(&self, i: usize) -> ConvexPolygon {
        let rep = self.dup[i];
        let site = self.points[rep];
        let mut poly = ConvexPolygon::from_rect(&self.universe);
        for &nb in &self.adjacency[rep] {
            if poly.is_empty() {
                break;
            }
            poly = poly.clip(&HalfPlane::bisector(site, self.points[nb]));
        }
        poly
    }

    /// The position of site `i` (duplicates keep their own coordinates,
    /// which coincide with their representative's within `EPS_TIGHT`).
    pub fn site(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Scratch variant of [`Delaunay::voronoi_cell`]: writes the cell
    /// into `out`, reusing `buf` as the clip working set — allocation
    /// free once both have warmed to capacity.
    // lbq-check: hot — cell construction on the serve hot tier.
    pub fn voronoi_cell_in(&self, i: usize, out: &mut ConvexPolygon, buf: &mut Vec<Point>) {
        let rep = self.dup[i];
        let site = self.points[rep];
        out.assign_rect(&self.universe);
        for &nb in &self.adjacency[rep] {
            if out.is_empty() {
                break;
            }
            out.clip_in_place(&HalfPlane::bisector(site, self.points[nb]), buf);
        }
    }

    /// All alive triangles as site-index triples (super-triangle
    /// incident triangles excluded).
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v < self.n_sites))
            .map(|t| t.v)
            .collect()
    }

    /// Checks the empty-circumcircle property over all real triangles
    /// against all sites — O(T·n), for tests.
    pub fn check_delaunay(&self) -> Result<(), String> {
        for t in self.tris.iter().filter(|t| t.alive) {
            if t.v.iter().any(|&v| v >= self.n_sites) {
                continue; // super-triangle fringe
            }
            let (a, b, c) = (
                self.points[t.v[0]],
                self.points[t.v[1]],
                self.points[t.v[2]],
            );
            for (i, &p) in self.points[..self.n_sites].iter().enumerate() {
                if t.v.contains(&i) || self.dup[i] != i {
                    continue;
                }
                if in_circumcircle(a, b, c, p) {
                    return Err(format!(
                        "site {i} at {p} violates circumcircle of {:?}",
                        t.v
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validates neighbor-pointer symmetry and shared edges — used by
    /// tests and debugging.
    pub fn check_adjacency(&self) -> Result<(), String> {
        for (i, t) in self.tris.iter().enumerate().filter(|(_, t)| t.alive) {
            for s in 0..3 {
                let Some(nb) = t.neighbors[s] else { continue };
                if !self.tris[nb].alive {
                    return Err(format!("tri {i} slot {s} points to dead {nb}"));
                }
                let a = t.v[(s + 1) % 3];
                let b = t.v[(s + 2) % 3];
                // The neighbor must hold the reversed edge and point back.
                let back = &self.tris[nb];
                let mut ok = false;
                for s2 in 0..3 {
                    let a2 = back.v[(s2 + 1) % 3];
                    let b2 = back.v[(s2 + 2) % 3];
                    if (a2, b2) == (b, a) {
                        ok = back.neighbors[s2] == Some(i);
                    }
                }
                if !ok {
                    return Err(format!(
                        "asymmetric adjacency: tri {i} ({:?}) slot {s} -> {nb} ({:?})",
                        t.v, back.v
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- construction internals ------------------------------------

    fn insert(&mut self, site: usize) {
        let p = self.points[site];
        let start = self.locate(p);
        // Flood-fill the cavity of circumcircle-violating triangles.
        let mut bad = vec![start];
        let mut seen = std::collections::HashSet::from([start]);
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            for nb in self.tris[t].neighbors.into_iter().flatten() {
                if seen.contains(&nb) || !self.tris[nb].alive {
                    continue;
                }
                let tv = self.tris[nb].v;
                if in_circumcircle(
                    self.points[tv[0]],
                    self.points[tv[1]],
                    self.points[tv[2]],
                    p,
                ) {
                    seen.insert(nb);
                    bad.push(nb);
                    stack.push(nb);
                }
            }
        }
        // Boundary edges of the cavity: (a, b, outer neighbor, dead id).
        let mut boundary: Vec<(usize, usize, Option<usize>, usize)> = Vec::new();
        for &t in &bad {
            let tri = self.tris[t];
            for i in 0..3 {
                let nb = tri.neighbors[i];
                let is_bad = nb.is_some_and(|nb| seen.contains(&nb));
                if !is_bad {
                    let a = tri.v[(i + 1) % 3];
                    let b = tri.v[(i + 2) % 3];
                    boundary.push((a, b, nb, t));
                }
            }
        }
        for &t in &bad {
            self.tris[t].alive = false;
            self.free.push(t);
        }
        // Fan new triangles from the site; the cavity is star-shaped
        // around p so (p, a, b) stays CCW.
        let mut start_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut end_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut created = Vec::with_capacity(boundary.len());
        for &(a, b, outer, _dead) in &boundary {
            let id = self.alloc(Tri {
                v: [site, a, b],
                neighbors: [outer, None, None],
                alive: true,
            });
            created.push(id);
            start_of.insert(a, id);
            end_of.insert(b, id);
            // Re-point the outer neighbor at us. Matching by the shared
            // edge (it holds (b, a)) is essential: dead triangle ids are
            // recycled within this very loop, so matching by id could
            // clobber a slot that was already re-pointed.
            if let Some(o) = outer {
                for slot in 0..3 {
                    let oa = self.tris[o].v[(slot + 1) % 3];
                    let ob = self.tris[o].v[(slot + 2) % 3];
                    if (oa, ob) == (b, a) {
                        self.tris[o].neighbors[slot] = Some(id);
                    }
                }
            }
        }
        for &(a, b, _, _) in &boundary {
            let id = start_of[&a];
            // Edge (b, p) is opposite vertex a (slot 1): shared with the
            // new triangle whose boundary edge starts at b.
            self.tris[id].neighbors[1] = Some(start_of[&b]);
            // Edge (p, a) is opposite vertex b (slot 2): shared with the
            // triangle whose boundary edge ends at a.
            self.tris[id].neighbors[2] = Some(end_of[&a]);
        }
        self.hint = created[0];
    }

    /// Walks from the hint triangle to one containing `p`.
    fn locate(&self, p: Point) -> usize {
        let mut cur = if self.tris[self.hint].alive {
            self.hint
        } else {
            self.tris
                .iter()
                .position(|t| t.alive)
                // lbq-check: allow(no-unwrap-core) — super-triangle always alive
                .expect("triangulation never empty")
        };
        let limit = 4 * self.tris.len() + 16;
        'walk: for _ in 0..limit {
            let tri = self.tris[cur];
            for i in 0..3 {
                let a = self.points[tri.v[(i + 1) % 3]];
                let b = self.points[tri.v[(i + 2) % 3]];
                if orient(a, b, p) < 0.0 {
                    match tri.neighbors[i] {
                        Some(nb) if self.tris[nb].alive => {
                            cur = nb;
                            continue 'walk;
                        }
                        _ => break, // outside over a hull edge: fall back
                    }
                }
            }
            return cur;
        }
        // Fallback: exhaustive scan (handles rare walk cycles from
        // degeneracies).
        self.tris
            .iter()
            .enumerate()
            .filter(|(_, t)| t.alive)
            .find(|(_, t)| {
                let (a, b, c) = (
                    self.points[t.v[0]],
                    self.points[t.v[1]],
                    self.points[t.v[2]],
                );
                orient(a, b, p) >= 0.0 && orient(b, c, p) >= 0.0 && orient(c, a, p) >= 0.0
            })
            .map(|(i, _)| i)
            // lbq-check: allow(no-unwrap-core) — super-triangle spans the data
            .expect("point lies inside the super-triangle")
    }

    fn alloc(&mut self, t: Tri) -> usize {
        if let Some(id) = self.free.pop() {
            self.tris[id] = t;
            id
        } else {
            self.tris.push(t);
            self.tris.len() - 1
        }
    }

    fn build_adjacency(&mut self) {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n_sites];
        for t in self.tris.iter().filter(|t| t.alive) {
            for i in 0..3 {
                let a = t.v[i];
                let b = t.v[(i + 1) % 3];
                if a < self.n_sites && b < self.n_sites {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        self.adjacency = adj;
    }
}

/// Strict in-circumcircle predicate for CCW triangle `(a, b, c)`.
fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> bool {
    debug_assert!(orient(a, b, c) >= 0.0, "triangle must be CCW");
    let (ax, ay) = (a.x - p.x, a.y - p.y);
    let (bx, by) = (b.x - p.x, b.y - p.y);
    let (cx, cy) = (c.x - p.x, c.y - p.y);
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn pseudo_random_sites(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn triangle_of_three() {
        let sites = [
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.2),
            Point::new(0.5, 0.8),
        ];
        let d = Delaunay::build(&sites, unit());
        assert_eq!(d.triangles().len(), 1);
        d.check_delaunay().unwrap();
        // Everyone is everyone's neighbor.
        for i in 0..3 {
            assert_eq!(d.neighbors(i).len(), 2);
        }
    }

    #[test]
    fn grid_is_delaunay() {
        let mut sites = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                // Tiny deterministic jitter avoids exact co-circularity.
                let jx = ((i * 7 + j * 13) % 11) as f64 * 1e-4;
                let jy = ((i * 3 + j * 5) % 7) as f64 * 1e-4;
                sites.push(Point::new(i as f64 / 6.0 + jx, j as f64 / 6.0 + jy));
            }
        }
        let d = Delaunay::build(&sites, unit());
        d.check_delaunay().unwrap();
        // Euler: for n points with h hull points, triangles = 2n − h − 2.
        let t = d.triangles().len();
        assert!(t >= 2 * sites.len() - 4 - sites.len(), "t = {t}");
    }

    #[test]
    fn random_sites_are_delaunay() {
        for seed in [1u64, 7, 42] {
            let sites = pseudo_random_sites(120, seed);
            let d = Delaunay::build(&sites, unit());
            d.check_delaunay().unwrap();
        }
    }

    #[test]
    fn duplicates_map_to_representative() {
        let p = Point::new(0.4, 0.4);
        let sites = [p, Point::new(0.8, 0.8), p, Point::new(0.1, 0.9)];
        let d = Delaunay::build(&sites, unit());
        d.check_delaunay().unwrap();
        // Site 2 duplicates site 0: identical neighbors and cell.
        assert_eq!(d.neighbors(0), d.neighbors(2));
        assert!((d.voronoi_cell(0).area() - d.voronoi_cell(2).area()).abs() < 1e-12);
    }

    #[test]
    fn voronoi_cells_tile_and_contain_sites() {
        let sites = pseudo_random_sites(80, 3);
        let d = Delaunay::build(&sites, unit());
        let total: f64 = (0..80).map(|i| d.voronoi_cell(i).area()).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        for (i, &s) in sites.iter().enumerate() {
            assert!(d.voronoi_cell(i).contains_eps(s, 1e-9));
        }
    }

    #[test]
    fn voronoi_cell_matches_brute_force_clipping() {
        // Independent check: clip the universe by bisectors with *all*
        // other sites (no Delaunay involved) and compare areas.
        let sites = pseudo_random_sites(40, 99);
        let d = Delaunay::build(&sites, unit());
        for i in 0..sites.len() {
            let mut poly = ConvexPolygon::from_rect(&unit());
            for (j, &other) in sites.iter().enumerate() {
                if j != i {
                    poly = poly.clip(&HalfPlane::bisector(sites[i], other));
                }
            }
            let cell = d.voronoi_cell(i);
            assert!(
                (cell.area() - poly.area()).abs() < 1e-9,
                "site {i}: dual {} vs brute {}",
                cell.area(),
                poly.area()
            );
        }
    }

    #[test]
    fn collinear_sites_handled() {
        let sites: Vec<Point> = (0..10)
            .map(|i| Point::new(0.05 + i as f64 * 0.1, 0.5))
            .collect();
        let d = Delaunay::build(&sites, unit());
        // Cells are vertical slabs; areas sum to 1.
        let total: f64 = (0..10).map(|i| d.voronoi_cell(i).area()).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn incircle_predicate() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        // Circumcircle center (0.5, 0.5), radius √0.5.
        assert!(in_circumcircle(a, b, c, Point::new(0.5, 0.5)));
        assert!(in_circumcircle(a, b, c, Point::new(0.9, 0.9)));
        assert!(!in_circumcircle(a, b, c, Point::new(1.3, 1.3)));
        assert!(!in_circumcircle(a, b, c, Point::new(-1.0, -1.0)));
    }
}
