//! Order-k machinery over the Delaunay adjacency graph: a greedy
//! point-location walk, exact k-nearest-site enumeration, and order-k
//! Voronoi cell construction. This is the geometry behind the
//! hot-tile fast path in `lbq-serve` (see `crates/serve/src/hot.rs`):
//! the walk + expansion locate a query's candidate k-set in
//! `O(k log k)` expected time over a tile-local site set, and the
//! order-k cell is the exact region where that k-set stays the answer.
//!
//! Correctness notes, referenced by the doc comments below:
//!
//! * **Greedy walk.** If site `s` is not a nearest site of `q`, then
//!   `q` lies outside `s`'s Voronoi cell, so the segment `s → q` exits
//!   the cell through an edge shared with a Voronoi neighbor `t` — a
//!   Delaunay neighbor of `s` — and the exit point `x` gives
//!   `d(q,t) ≤ d(q,x) + d(x,t) = d(q,x) + d(x,s) = d(q,s)` with
//!   equality only in degenerate ties. Greedy descent over Delaunay
//!   neighbors therefore never gets stuck before reaching a nearest
//!   site (Bose & Morin, "Online routing in triangulations").
//!
//! * **Best-first k-NN.** For any site `s`, walking the segment
//!   `s → q` as above yields a Delaunay neighbor `b` of `s` with
//!   `d(q,b) ≤ d(q,s)`. Inductively every site has a Delaunay path to
//!   the nearest site along which distance to `q` never increases, so
//!   a best-first expansion seeded at the nearest site (Dijkstra over
//!   `d(q,·)` as the priority) pops sites in exact nondecreasing
//!   distance order — the first `k` pops are the `k` nearest sites.
//!
//! * **Order-k cell.** The order-k cell of a member set `S` is
//!   `⋂ { H(s,o) : s ∈ S, o ∉ S }` where `H(s,o)` is the closed
//!   half-plane of points at least as close to `s` as to `o`. Clipping
//!   by any subset of those half-planes yields a superset polygon;
//!   once every polygon vertex verifiably satisfies
//!   `max_{s∈S} d(v,s) ≤ min_{o∉S} d(v,o)` the polygon's convex hull —
//!   the polygon itself — lies inside the true cell, so superset and
//!   subset coincide and the construction is exact (up to the
//!   verification epsilon). Candidate generation starts from the
//!   Delaunay neighborhoods of `S` and grows by the violating site of
//!   each failed vertex check, which terminates because each round
//!   admits at least one never-seen site.

use crate::delaunay::Delaunay;
use lbq_geom::{ConvexPolygon, HalfPlane, Point};

/// Reusable scratch for the order-k entry points — heap, visited
/// marks, candidate set, and clip buffers. One instance per worker
/// thread keeps the hot lookups allocation-free at steady state.
///
/// Marks are epoch-stamped: `begin` bumps the epoch instead of
/// clearing, so reuse across calls costs O(1).
#[derive(Debug, Default, Clone)]
pub struct OrderKScratch {
    /// Binary min-heap of `(dist², site)` pairs, keyed on `.0`.
    heap: Vec<(f64, u32)>,
    /// Epoch stamps: `visited[s] == visit_epoch` ⇔ `s` already heaped.
    visited: Vec<u32>,
    visit_epoch: u32,
    /// Epoch stamps for membership in the current member set `S`.
    member: Vec<u32>,
    member_epoch: u32,
    /// Accepted outside-site candidates for cell clipping.
    cand: Vec<u32>,
    /// Clip working set for [`ConvexPolygon::clip_in_place`].
    clip: Vec<Point>,
    /// Walk hint: the site the previous query resolved to. Consecutive
    /// nearby queries (the hot-tile access pattern) start their walk
    /// one or two hops from the answer.
    hint: usize,
}

impl OrderKScratch {
    /// Prepares the marks for a triangulation of `n` sites and bumps
    /// the visit epoch.
    fn begin_visit(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.visit_epoch = self.visit_epoch.wrapping_add(1);
        if self.visit_epoch == 0 {
            self.visited.iter_mut().for_each(|m| *m = 0);
            self.visit_epoch = 1;
        }
        self.heap.clear();
    }

    /// Prepares the member marks for a triangulation of `n` sites.
    fn begin_member(&mut self, n: usize) {
        if self.member.len() < n {
            self.member.resize(n, 0);
        }
        self.member_epoch = self.member_epoch.wrapping_add(1);
        if self.member_epoch == 0 {
            self.member.iter_mut().for_each(|m| *m = 0);
            self.member_epoch = 1;
        }
    }

    fn visit(&mut self, s: usize) -> bool {
        if self.visited[s] == self.visit_epoch {
            return false;
        }
        self.visited[s] = self.visit_epoch;
        true
    }

    fn is_member(&self, s: usize) -> bool {
        self.member[s] == self.member_epoch
    }

    /// Pushes `(key, site)` maintaining the min-heap invariant on `.0`.
    fn heap_push(&mut self, key: f64, site: u32) {
        self.heap.push((key, site));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Pops the minimum-key entry.
    fn heap_pop(&mut self) -> Option<(f64, u32)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let top = self.heap.pop();
        let mut i = 0;
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut small = i;
            if l < n && self.heap[l].0 < self.heap[small].0 {
                small = l;
            }
            if r < n && self.heap[r].0 < self.heap[small].0 {
                small = r;
            }
            if small == i {
                break;
            }
            self.heap.swap(i, small);
            i = small;
        }
        top
    }
}

impl Delaunay {
    /// A nearest site of `q` by greedy descent over the Delaunay
    /// adjacency graph, starting from `hint` (any site index; out of
    /// range is clamped). Returns the representative index, or `None`
    /// on an empty triangulation.
    ///
    /// Exact: greedy descent on a Delaunay triangulation cannot stall
    /// before a nearest site (see the module-level walk note). The
    /// step bound is defensive only — distances strictly decrease, so
    /// the walk cannot cycle.
    // lbq-check: hot — point-location entry for the serve hot tier.
    pub fn nearest_site_walk(&self, q: Point, hint: usize) -> Option<usize> {
        if self.n_sites == 0 {
            return None;
        }
        let mut cur = self.dup[hint.min(self.n_sites - 1)];
        let mut cur_d = q.dist_sq(self.points[cur]);
        for _ in 0..=self.n_sites {
            let mut best = cur;
            let mut best_d = cur_d;
            for &nb in &self.adjacency[cur] {
                let d = q.dist_sq(self.points[nb]);
                if d < best_d {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                return Some(cur);
            }
            cur = best;
            cur_d = best_d;
        }
        Some(cur)
    }

    /// The `k` nearest (distinct) sites of `q` in nondecreasing
    /// distance order, written into `out` as representative indices.
    /// Returns fewer than `k` when the triangulation has fewer
    /// distinct sites. Exact — see the module-level best-first note.
    ///
    /// Allocation-free at steady state: the walk, heap, and marks all
    /// live in `scratch`, and `out` is reused.
    // lbq-check: hot — per-query k-set location on the serve hot tier.
    pub fn k_nearest_sites_in(
        &self,
        q: Point,
        k: usize,
        scratch: &mut OrderKScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        if self.n_sites == 0 || k == 0 {
            return;
        }
        let hint = scratch.hint;
        let Some(start) = self.nearest_site_walk(q, hint) else {
            return;
        };
        scratch.hint = start;
        scratch.begin_visit(self.n_sites);
        scratch.visit(start);
        scratch.heap_push(q.dist_sq(self.points[start]), sat_u32(start));
        while let Some((_, s)) = scratch.heap_pop() {
            let s = s as usize;
            out.push(s);
            if out.len() == k {
                return;
            }
            for &nb in &self.adjacency[s] {
                if scratch.visit(nb) {
                    scratch.heap_push(q.dist_sq(self.points[nb]), sat_u32(nb));
                }
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`Delaunay::k_nearest_sites_in`].
    pub fn k_nearest_sites(&self, q: Point, k: usize) -> Vec<usize> {
        let mut scratch = OrderKScratch::default();
        let mut out = Vec::new();
        self.k_nearest_sites_in(q, k, &mut scratch, &mut out);
        out
    }

    /// The order-k Voronoi cell of the member set `members` (site
    /// indices; duplicates resolve to representatives), clipped to the
    /// universe, written into `out`. Empty output means the set is not
    /// the k-nearest set of any point in the universe.
    ///
    /// Construction: clip the universe by the bisector half-planes
    /// from every member toward a growing candidate set of outside
    /// sites (seeded with the members' Delaunay neighborhoods), then
    /// verify every polygon vertex against its true nearest outside
    /// site via best-first search; a violated vertex admits the
    /// violating site as a new candidate and the clip repeats. The
    /// fixpoint is the exact cell — see the module-level order-k note.
    // lbq-check: hot — cell materialization for promoted tiles.
    pub fn order_k_cell_in(
        &self,
        members: &[usize],
        scratch: &mut OrderKScratch,
        out: &mut ConvexPolygon,
    ) {
        out.assign_rect(&self.universe);
        if members.is_empty() {
            return;
        }
        scratch.begin_member(self.n_sites);
        let epoch = scratch.member_epoch;
        for &m in members {
            scratch.member[self.dup[m]] = epoch;
        }
        // Seed candidates: the Delaunay neighborhoods of the members.
        scratch.cand.clear();
        let mut cand_from = 0;
        for &m in members {
            let rep = self.dup[m];
            for &o in &self.adjacency[rep] {
                if !scratch.is_member(o) && !scratch.cand_has(o) {
                    scratch.cand.push(sat_u32(o));
                }
            }
        }
        let scale = self.universe.width().max(self.universe.height()).max(1.0);
        let eps = lbq_geom::EPS * scale;
        loop {
            // Clip by every (member, new-candidate) bisector.
            for ci in cand_from..scratch.cand.len() {
                let o = self.points[scratch.cand[ci] as usize];
                for &m in members {
                    if out.is_empty() {
                        return;
                    }
                    let s = self.points[self.dup[m]];
                    out.clip_in_place(&HalfPlane::bisector(s, o), &mut scratch.clip);
                }
            }
            cand_from = scratch.cand.len();
            // Verify vertices; admit the violating site of the worst
            // failure (if any) and go again.
            let mut grew = false;
            for vi in 0..out.len() {
                let v = out.vertices()[vi];
                let far = members
                    .iter()
                    .map(|&m| v.dist(self.points[self.dup[m]]))
                    .fold(0.0_f64, f64::max);
                if let Some(o) = self.nearest_outside(v, scratch) {
                    if v.dist(self.points[o]) + eps < far && !scratch.cand_has(o) {
                        scratch.cand.push(sat_u32(o));
                        grew = true;
                    }
                }
            }
            if !grew {
                return;
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`Delaunay::order_k_cell_in`].
    pub fn order_k_cell(&self, members: &[usize]) -> ConvexPolygon {
        let mut scratch = OrderKScratch::default();
        let mut out = ConvexPolygon::empty();
        self.order_k_cell_in(members, &mut scratch, &mut out);
        out
    }

    /// The nearest site of `v` outside the current member set: pops
    /// the best-first expansion until a non-member surfaces.
    fn nearest_outside(&self, v: Point, scratch: &mut OrderKScratch) -> Option<usize> {
        let start = self.nearest_site_walk(v, scratch.hint)?;
        scratch.begin_visit(self.n_sites);
        scratch.visit(start);
        scratch.heap_push(v.dist_sq(self.points[start]), sat_u32(start));
        while let Some((_, s)) = scratch.heap_pop() {
            let s = s as usize;
            if !scratch.is_member(s) {
                return Some(s);
            }
            for &nb in &self.adjacency[s] {
                if scratch.visit(nb) {
                    scratch.heap_push(v.dist_sq(self.points[nb]), sat_u32(nb));
                }
            }
        }
        None
    }
}

impl OrderKScratch {
    /// Candidate-set dedup — a linear scan; the candidate set stays
    /// within a small multiple of `k` in practice.
    fn cand_has(&self, s: usize) -> bool {
        self.cand.iter().any(|&c| c as usize == s)
    }
}

/// Site indices are bounded by the u32 key space everywhere this crate
/// is deployed (tile-local site sets); saturate defensively.
fn sat_u32(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}
