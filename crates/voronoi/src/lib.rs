//! # lbq-voronoi — Delaunay triangulation and Voronoi cells
//!
//! The computational-geometry baseline substrate of the `lbq` workspace
//! (reproduction of *"Location-based Spatial Queries"*, SIGMOD 2003).
//!
//! The paper's Related Work compares against Zheng & Lee `[ZL01]`, which
//! **pre-computes the Voronoi diagram** of the dataset and answers
//! moving-NN queries from it. The paper's own approach deliberately
//! avoids that precomputation (Section 3 lists four reasons), but the
//! baseline still has to exist to be compared against — so this crate
//! builds it from scratch:
//!
//! * [`Delaunay`] — incremental Bowyer–Watson triangulation with
//!   walk-based point location;
//! * [`Delaunay::voronoi_cell`] — the dual Voronoi cell of any site,
//!   clipped to a bounding universe, derived by intersecting bisector
//!   half-planes with the site's Delaunay neighbors;
//! * [`VoronoiDiagram`] — all cells precomputed, the `[ZL01]` server state.
//!
//! Beyond the baseline, the crate is the *independent ground truth* for
//! the core library's tests: the paper's Observation (Section 3.1) says
//! the validity region of a 1-NN query **is** the Voronoi cell of its
//! result, so `lbq-core`'s TPNN-driven region construction is checked
//! cell-for-cell against this crate.

mod delaunay;
mod order_k;

pub use delaunay::Delaunay;
pub use order_k::OrderKScratch;

use lbq_geom::{ConvexPolygon, Point, Rect};

/// A fully precomputed Voronoi diagram over a point set — the server
/// state of the `[ZL01]` baseline.
#[derive(Debug, Clone)]
pub struct VoronoiDiagram {
    sites: Vec<Point>,
    cells: Vec<ConvexPolygon>,
    universe: Rect,
}

impl VoronoiDiagram {
    /// Builds the diagram of `sites` clipped to `universe`.
    ///
    /// O(n log n) expected construction (incremental Delaunay) plus
    /// O(deg) per cell extraction.
    pub fn build(sites: &[Point], universe: Rect) -> Self {
        let tri = Delaunay::build(sites, universe);
        let cells = (0..sites.len()).map(|i| tri.voronoi_cell(i)).collect();
        VoronoiDiagram {
            sites: sites.to_vec(),
            cells,
            universe,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the diagram has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The clipping universe.
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// The sites.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The cell of site `i` (clipped to the universe).
    pub fn cell(&self, i: usize) -> &ConvexPolygon {
        &self.cells[i]
    }

    /// Locates the site whose cell contains `q` — i.e. the nearest
    /// neighbor of `q` — by brute force over sites. The `[ZL01]` server
    /// would use an R-tree over cell MBRs; the `lbq-core::baselines`
    /// module wires that up, this method is the reference answer.
    pub fn nearest_site(&self, q: Point) -> Option<usize> {
        (0..self.sites.len()).min_by(|&a, &b| {
            q.dist_sq(self.sites[a])
                .total_cmp(&q.dist_sq(self.sites[b]))
        })
    }

    /// Distance from `q` to the boundary of the cell containing it
    /// (the `[ZL01]` validity radius: result guaranteed for travel shorter
    /// than this). Returns `None` if `q` is outside cell `i`.
    pub fn escape_distance(&self, i: usize, q: Point) -> Option<f64> {
        let cell = &self.cells[i];
        if !cell.contains_eps(q, lbq_geom::EPS) {
            return None;
        }
        Some(dist_to_boundary(cell, q))
    }
}

/// Minimum distance from an interior point to the polygon boundary.
pub fn dist_to_boundary(poly: &ConvexPolygon, p: Point) -> f64 {
    let vs = poly.vertices();
    let n = vs.len();
    let mut best = f64::INFINITY;
    for i in 0..n {
        let seg = lbq_geom::Segment::new(vs[i], vs[(i + 1) % n]);
        best = best.min(seg.dist_to_point(p));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn single_site_owns_universe() {
        let d = VoronoiDiagram::build(&[Point::new(0.3, 0.6)], unit());
        assert_eq!(d.len(), 1);
        assert!((d.cell(0).area() - 1.0).abs() < 1e-9);
        assert_eq!(d.nearest_site(Point::new(0.9, 0.9)), Some(0));
    }

    #[test]
    fn two_sites_split_by_bisector() {
        let d = VoronoiDiagram::build(&[Point::new(0.25, 0.5), Point::new(0.75, 0.5)], unit());
        assert!((d.cell(0).area() - 0.5).abs() < 1e-9);
        assert!((d.cell(1).area() - 0.5).abs() < 1e-9);
        assert!(d.cell(0).contains(Point::new(0.1, 0.1)));
        assert!(d.cell(1).contains(Point::new(0.9, 0.9)));
    }

    #[test]
    fn five_point_cross() {
        // Center plus 4 axis points in [0,10]²: the center's cell is the
        // square (2.5,2.5)-(7.5,7.5) (same fixture as the geom tests,
        // now derived via Delaunay instead of direct clipping).
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let sites = [
            Point::new(5.0, 5.0),
            Point::new(0.0, 5.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 10.0),
        ];
        let d = VoronoiDiagram::build(&sites, universe);
        assert!(
            (d.cell(0).area() - 25.0).abs() < 1e-6,
            "area {}",
            d.cell(0).area()
        );
        // The four outer cells tile the rest.
        let total: f64 = (0..5).map(|i| d.cell(i).area()).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn cells_partition_universe() {
        // Deterministic scattered sites; cell areas must sum to the
        // universe area and each site must sit in its own cell.
        let mut sites = Vec::new();
        let mut s: u64 = 12345;
        for _ in 0..60 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 17) % 1000) as f64 / 1000.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 17) % 1000) as f64 / 1000.0;
            sites.push(Point::new(x, y));
        }
        let d = VoronoiDiagram::build(&sites, unit());
        let total: f64 = (0..d.len()).map(|i| d.cell(i).area()).sum();
        assert!((total - 1.0).abs() < 1e-6, "areas sum to {total}");
        for (i, &site) in sites.iter().enumerate() {
            assert!(
                d.cell(i).contains_eps(site, 1e-9),
                "site {i} outside its cell"
            );
        }
    }

    #[test]
    fn nearest_site_matches_cell_membership() {
        let sites = [
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.3),
            Point::new(0.5, 0.9),
        ];
        let d = VoronoiDiagram::build(&sites, unit());
        for i in 0..20 {
            for j in 0..20 {
                let q = Point::new(i as f64 / 20.0 + 0.02, j as f64 / 20.0 + 0.02);
                let ns = d.nearest_site(q).unwrap();
                assert!(d.cell(ns).contains_eps(q, 1e-6), "q={q} ns={ns}");
            }
        }
    }

    #[test]
    fn escape_distance_is_safe() {
        let sites = [Point::new(0.3, 0.3), Point::new(0.7, 0.7)];
        let d = VoronoiDiagram::build(&sites, unit());
        let q = Point::new(0.2, 0.2);
        let site = d.nearest_site(q).unwrap();
        let r = d.escape_distance(site, q).unwrap();
        assert!(r > 0.0);
        // Any point within r of q has the same nearest site.
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let p = q + lbq_geom::Vec2::from_angle(theta) * (r * 0.99);
            if unit().contains(p) {
                assert_eq!(d.nearest_site(p), Some(site));
            }
        }
        // Outside the cell → None.
        assert!(d.escape_distance(site, Point::new(0.9, 0.9)).is_none());
    }

    #[test]
    fn dist_to_boundary_square() {
        let poly = ConvexPolygon::from_rect(&unit());
        assert!((dist_to_boundary(&poly, Point::new(0.5, 0.5)) - 0.5).abs() < 1e-12);
        assert!((dist_to_boundary(&poly, Point::new(0.1, 0.5)) - 0.1).abs() < 1e-12);
        assert!(dist_to_boundary(&poly, Point::new(0.0, 0.3)).abs() < 1e-12);
    }
}
