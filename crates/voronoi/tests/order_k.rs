//! Ground-truth suite for the order-k machinery: the greedy walk,
//! best-first k-nearest-site enumeration, and order-k cell
//! construction are each pinned against brute force over dense
//! sample grids — the satellite contract of the hot-tile PR.

use lbq_geom::{ConvexPolygon, Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_voronoi::{Delaunay, OrderKScratch};

fn universe() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

fn random_sites(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_f64(), rng.gen_f64()))
        .collect()
}

/// Brute-force k nearest sites, sorted by distance with index
/// tie-break. Callers pass distinct site sets, so every index is its
/// own representative.
fn brute_k_nearest(_d: &Delaunay, sites: &[Point], q: Point, k: usize) -> Vec<usize> {
    let mut by_dist: Vec<(f64, usize)> = sites
        .iter()
        .enumerate()
        .map(|(i, s)| (q.dist(*s), i))
        .collect();
    by_dist.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    by_dist.into_iter().take(k).map(|(_, i)| i).collect()
}

#[test]
fn walk_matches_brute_nearest() {
    let sites = random_sites(80, 11);
    let d = Delaunay::build(&sites, universe());
    let mut rng = Xoshiro256ss::seed_from_u64(99);
    for trial in 0..500 {
        let q = Point::new(rng.gen_f64() * 1.4 - 0.2, rng.gen_f64() * 1.4 - 0.2);
        let hint = trial % sites.len();
        let got = d.nearest_site_walk(q, hint).expect("non-empty");
        let want = (0..sites.len())
            .min_by(|&a, &b| q.dist(sites[a]).total_cmp(&q.dist(sites[b])))
            .expect("non-empty");
        assert!(
            (q.dist(sites[got]) - q.dist(sites[want])).abs() < 1e-12,
            "walk from hint {hint} found {got} at {}, brute {want} at {}",
            q.dist(sites[got]),
            q.dist(sites[want])
        );
    }
}

#[test]
fn k_nearest_matches_brute_over_dense_grid() {
    let sites = random_sites(60, 7);
    let d = Delaunay::build(&sites, universe());
    let mut scratch = OrderKScratch::default();
    let mut out = Vec::new();
    for k in [1usize, 2, 3, 5, 8, 16] {
        for gy in 0..32 {
            for gx in 0..32 {
                let q = Point::new((gx as f64 + 0.5) / 32.0, (gy as f64 + 0.5) / 32.0);
                d.k_nearest_sites_in(q, k, &mut scratch, &mut out);
                let brute = brute_k_nearest(&d, &sites, q, k);
                let mut got = out.clone();
                got.sort_unstable();
                let mut want = brute;
                want.sort_unstable();
                assert_eq!(got, want, "k={k} q=({},{})", q.x, q.y);
            }
        }
    }
}

#[test]
fn k_nearest_orders_by_distance_and_caps_at_site_count() {
    let sites = random_sites(12, 3);
    let d = Delaunay::build(&sites, universe());
    let q = Point::new(0.31, 0.62);
    let got = d.k_nearest_sites(q, 40);
    assert_eq!(got.len(), 12, "k beyond the site count returns all sites");
    for w in got.windows(2) {
        assert!(
            q.dist(sites[w[0]]) <= q.dist(sites[w[1]]) + 1e-12,
            "pops must come in nondecreasing distance order"
        );
    }
}

#[test]
fn order_1_cell_matches_voronoi_cell() {
    let sites = random_sites(40, 21);
    let d = Delaunay::build(&sites, universe());
    for i in 0..sites.len() {
        let a = d.voronoi_cell(i);
        let b = d.order_k_cell(&[i]);
        assert!(
            (a.area() - b.area()).abs() < 1e-9,
            "site {i}: voronoi_cell area {} vs order-1 cell area {}",
            a.area(),
            b.area()
        );
        // Every vertex of each lies in the other (within eps).
        for &v in a.vertices() {
            assert!(b.contains_eps(v, 1e-9));
        }
        for &v in b.vertices() {
            assert!(a.contains_eps(v, 1e-9));
        }
    }
}

#[test]
fn order_k_cell_agrees_with_brute_knn_over_dense_grid() {
    let sites = random_sites(50, 5);
    let d = Delaunay::build(&sites, universe());
    let mut scratch = OrderKScratch::default();
    for k in [2usize, 3, 4, 6] {
        let mut cell = ConvexPolygon::empty();
        for gy in 0..40 {
            for gx in 0..40 {
                let q = Point::new((gx as f64 + 0.5) / 40.0, (gy as f64 + 0.5) / 40.0);
                let members = brute_k_nearest(&d, &sites, q, k);
                d.order_k_cell_in(&members, &mut scratch, &mut cell);
                // q's own k-set cell must contain q.
                assert!(
                    cell.contains_eps(q, 1e-9),
                    "k={k}: q=({},{}) outside the order-k cell of its own k-set",
                    q.x,
                    q.y
                );
                // And strictly-interior probes of the cell must brute
                // back to the same member set.
                if let Some(c) = cell.vertex_centroid() {
                    if cell.contains_eps(c, -1e-9) {
                        let mut back = brute_k_nearest(&d, &sites, c, k);
                        back.sort_unstable();
                        let mut want = members.clone();
                        want.sort_unstable();
                        assert_eq!(back, want, "k={k}: centroid k-set drifted");
                    }
                }
            }
        }
    }
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
    let sites = random_sites(45, 17);
    let d = Delaunay::build(&sites, universe());
    let mut reused = OrderKScratch::default();
    let mut out = Vec::new();
    let mut cell = ConvexPolygon::empty();
    let mut rng = Xoshiro256ss::seed_from_u64(4);
    for _ in 0..200 {
        let q = Point::new(rng.gen_f64(), rng.gen_f64());
        let k = 1 + rng.gen_index(6);
        d.k_nearest_sites_in(q, k, &mut reused, &mut out);
        assert_eq!(
            out,
            d.k_nearest_sites(q, k),
            "k-set drifted under scratch reuse"
        );
        d.order_k_cell_in(&out, &mut reused, &mut cell);
        let fresh = d.order_k_cell(&out);
        assert_eq!(
            cell.vertices().len(),
            fresh.vertices().len(),
            "cell vertex count drifted under scratch reuse"
        );
        for (a, b) in cell.vertices().iter().zip(fresh.vertices()) {
            assert!(a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits());
        }
    }
}

#[test]
fn duplicates_resolve_to_representatives() {
    let mut sites = random_sites(20, 13);
    sites.push(sites[3]);
    sites.push(sites[7]);
    let d = Delaunay::build(&sites, universe());
    let got = d.k_nearest_sites(sites[3], 3);
    assert!(
        got.contains(&3),
        "duplicate site must resolve to its representative"
    );
    assert!(
        !got.contains(&20),
        "the duplicate's own index never appears in k-sets"
    );
    let cell = d.order_k_cell(&[20]);
    let rep_cell = d.order_k_cell(&[3]);
    assert!((cell.area() - rep_cell.area()).abs() < 1e-12);
}

#[test]
fn collinear_sites_stay_exact() {
    let sites: Vec<Point> = (0..9)
        .map(|i| Point::new(0.1 + 0.1 * i as f64, 0.5))
        .collect();
    let d = Delaunay::build(&sites, universe());
    let mut rng = Xoshiro256ss::seed_from_u64(31);
    for _ in 0..200 {
        let q = Point::new(rng.gen_f64(), rng.gen_f64());
        let got = d.nearest_site_walk(q, 0).expect("non-empty");
        let want = (0..sites.len())
            .min_by(|&a, &b| q.dist(sites[a]).total_cmp(&q.dist(sites[b])))
            .expect("non-empty");
        assert!((q.dist(sites[got]) - q.dist(sites[want])).abs() < 1e-12);
        let mut got3 = d.k_nearest_sites(q, 3);
        got3.sort_unstable();
        let mut want3 = brute_k_nearest(&d, &sites, q, 3);
        want3.sort_unstable();
        assert_eq!(got3, want3);
    }
}
