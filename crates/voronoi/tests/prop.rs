//! Property tests: the Delaunay triangulation and its Voronoi dual on
//! random point sets.

use lbq_geom::{ConvexPolygon, HalfPlane, Point, Rect};
use lbq_voronoi::{Delaunay, VoronoiDiagram};
use proptest::prelude::*;

fn sites_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn unit() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn triangulation_is_delaunay_with_symmetric_adjacency(
        sites in sites_strategy(80),
    ) {
        let d = Delaunay::build(&sites, unit());
        d.check_adjacency().unwrap();
        d.check_delaunay().unwrap();
    }

    #[test]
    fn cells_tile_the_universe(sites in sites_strategy(60)) {
        let d = VoronoiDiagram::build(&sites, unit());
        let total: f64 = (0..d.len()).map(|i| d.cell(i).area()).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {}", total);
    }

    #[test]
    fn cell_matches_all_pairs_clipping(sites in sites_strategy(25)) {
        // The Delaunay-dual cell equals the brute-force intersection of
        // every bisector half-plane.
        let d = Delaunay::build(&sites, unit());
        for i in 0..sites.len() {
            let mut brute = ConvexPolygon::from_rect(&unit());
            for (j, &o) in sites.iter().enumerate() {
                if j != i && sites[i].dist(o) > 1e-12 {
                    brute = brute.clip(&HalfPlane::bisector(sites[i], o));
                }
            }
            let dual = d.voronoi_cell(i);
            prop_assert!(
                (dual.area() - brute.area()).abs() < 1e-8,
                "site {}: dual {} brute {}", i, dual.area(), brute.area()
            );
        }
    }

    #[test]
    fn nearest_site_owns_containing_cell(
        sites in sites_strategy(40),
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
    ) {
        let d = VoronoiDiagram::build(&sites, unit());
        let q = Point::new(qx, qy);
        let ns = d.nearest_site(q).unwrap();
        prop_assert!(d.cell(ns).contains_eps(q, 1e-6));
    }
}
