//! Randomized property tests: the Delaunay triangulation and its
//! Voronoi dual on random point sets.
//!
//! Formerly `proptest`; now seeded [`lbq_rng`] randomness (no crates.io
//! access in the build environment). The `heavy-tests` feature
//! multiplies case counts.

use lbq_geom::{ConvexPolygon, HalfPlane, Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_voronoi::{Delaunay, VoronoiDiagram};

/// Case-count knob: 8× under `--features heavy-tests`.
fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

fn rand_sites(rng: &mut Xoshiro256ss, max: usize) -> Vec<Point> {
    let n = rng.gen_range(1..max);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect()
}

fn unit() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

#[test]
fn triangulation_is_delaunay_with_symmetric_adjacency() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xDE1A);
    for case in 0..cases(48) {
        let sites = rand_sites(&mut rng, 80);
        let d = Delaunay::build(&sites, unit());
        d.check_adjacency()
            .unwrap_or_else(|e| panic!("case {case}: adjacency: {e}"));
        d.check_delaunay()
            .unwrap_or_else(|e| panic!("case {case}: delaunay: {e}"));
    }
}

#[test]
fn cells_tile_the_universe() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x711E);
    for case in 0..cases(48) {
        let sites = rand_sites(&mut rng, 60);
        let d = VoronoiDiagram::build(&sites, unit());
        let total: f64 = (0..d.len()).map(|i| d.cell(i).area()).sum();
        assert!((total - 1.0).abs() < 1e-6, "case {case}: total {total}");
    }
}

#[test]
fn cell_matches_all_pairs_clipping() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xA11);
    for case in 0..cases(48) {
        let sites = rand_sites(&mut rng, 25);
        // The Delaunay-dual cell equals the brute-force intersection of
        // every bisector half-plane.
        let d = Delaunay::build(&sites, unit());
        for i in 0..sites.len() {
            let mut brute = ConvexPolygon::from_rect(&unit());
            for (j, &o) in sites.iter().enumerate() {
                if j != i && sites[i].dist(o) > 1e-12 {
                    brute = brute.clip(&HalfPlane::bisector(sites[i], o));
                }
            }
            let dual = d.voronoi_cell(i);
            assert!(
                (dual.area() - brute.area()).abs() < 1e-8,
                "case {case} site {i}: dual {} brute {}",
                dual.area(),
                brute.area()
            );
        }
    }
}

#[test]
fn nearest_site_owns_containing_cell() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x0EA5);
    for case in 0..cases(48) {
        let sites = rand_sites(&mut rng, 40);
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        let d = VoronoiDiagram::build(&sites, unit());
        let ns = d.nearest_site(q).expect("non-empty site set");
        assert!(d.cell(ns).contains_eps(q, 1e-6), "case {case}: q {q}");
    }
}
