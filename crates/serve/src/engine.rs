//! The batch engine: pool + cache + shared tree, glued together.
//!
//! ## Tile-batched dispatch
//!
//! `submit` does not hand the pool one job per query. It sorts the
//! batch by the Hilbert key of each query focus
//! ([`lbq_rtree::hilbert`]), cuts the sorted order into **locality
//! tiles** of [`EngineConfig::tile_size`] queries, and enqueues one job
//! per tile. Two effects compound:
//!
//! * **fewer queue round-trips** — a 1024-query batch at tile size 32
//!   costs 32 Mutex+Condvar handoffs instead of 1024, so the injector
//!   lock stops being the bottleneck at high worker counts;
//! * **spatial locality per worker** — consecutive queries of a tile
//!   are Hilbert-adjacent, so a tile's cache-miss kNN queries descend
//!   the same subtrees (and are answered *together* by the
//!   shared-frontier [`lbq_rtree::RTree::knn_group_in`] traversal),
//!   and its validity-region TPNN chains re-touch warm nodes.
//!
//! Responses are un-permuted before `submit` returns: output order is
//! request order, exactly as with per-query dispatch.

use crate::cache::{CacheConfig, RegionCache};
use crate::hot::{HotConfig, HotIndex, HotScratch, HotStats, HotTile};
use crate::pool::{Job, Pool};
use crate::{answer_on_with, QueryAnswer, QueryReq, QueryResp};
use lbq_core::LbqServer;
use lbq_geom::Point;
use lbq_obs::{CacheTier, HistogramSummary, QueryEvent, QueryKind, StageNanos};
use lbq_rtree::hilbert::{hilbert_key, KEY_ORDER};
use lbq_rtree::{Item, QueryScratch, Stats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Sizing of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Validity-region cache geometry ([`CacheConfig::disabled`] turns
    /// the cache off, e.g. for measuring raw tree throughput).
    pub cache: CacheConfig,
    /// Queries per locality tile (clamped to ≥ 1). `submit` sorts each
    /// batch along the Hilbert curve of the query foci and dispatches
    /// tiles of this many adjacent queries as single pool jobs; a
    /// tile's cache-miss kNN queries are answered in one
    /// shared-frontier traversal. `1` disables tiling: one query per
    /// job, in submission order.
    pub tile_size: usize,
    /// Hot-tile Voronoi fast-path policy ([`HotConfig::disabled`]
    /// turns the tier off; see `crate::hot`).
    pub hot: HotConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache: CacheConfig::default(),
            tile_size: 32,
            hot: HotConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `workers` threads and the default cache.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }
}

/// Per-worker accounting, aggregated lock-free by the workers.
#[derive(Debug, Default)]
struct WorkerStats {
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    busy_ns: AtomicU64,
    latency: lbq_obs::Histogram,
}

/// A point-in-time copy of one worker's counters, for reporting.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Worker index (thread `lbq-serve-<worker>`).
    pub worker: usize,
    /// Requests served.
    pub jobs: u64,
    /// Requests answered from the region cache.
    pub cache_hits: u64,
    /// Total busy time, nanoseconds.
    pub busy_ns: u64,
    /// Service-latency distribution of this worker.
    pub latency: HistogramSummary,
}

/// State shared between `submit` and the jobs of one batch.
struct Batch {
    results: Mutex<Vec<Option<QueryResp>>>,
    remaining: AtomicUsize,
    done: Condvar,
    done_lock: Mutex<bool>,
}

/// The concurrent batched query engine. See the crate docs for the
/// architecture; construction is [`Engine::new`], the entry point is
/// [`Engine::submit`].
#[derive(Debug)]
pub struct Engine {
    server: Arc<LbqServer>,
    cache: Arc<RegionCache>,
    pool: Pool,
    stats: Arc<Vec<WorkerStats>>,
    batch_latency: lbq_obs::Histogram,
    tile_size: usize,
    tile_occupancy: lbq_obs::Histogram,
    /// Monotonic id source: `submit` claims one id per request, in
    /// request order, so ids are stable across tiling and scheduling.
    next_query_id: AtomicU64,
    /// Per-Hilbert-tile hit/latency counters (`serve-tile-heat`),
    /// fed on the recording path only.
    heat: lbq_obs::Heatmap,
    /// The hot-tile Voronoi index; `None` when the tier is disabled,
    /// so the disabled serve path carries zero hot-tier work.
    hot: Option<Arc<HotIndex>>,
}

// Compile-time proof that the engine can be shared across submitting
// threads (`Arc<Engine>` is the intended ownership shape); a field
// losing Send or Sync must fail the build, not a load test.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// Builds an engine over `server` with `config` workers and cache.
    pub fn new(server: Arc<LbqServer>, config: EngineConfig) -> Self {
        let pool = Pool::new(config.workers);
        let stats = Arc::new(
            (0..pool.workers())
                .map(|_| WorkerStats::default())
                .collect::<Vec<_>>(),
        );
        let cache = Arc::new(RegionCache::new(server.universe(), config.cache));
        let hot = config
            .hot
            .is_enabled()
            .then(|| Arc::new(HotIndex::new(config.hot, server.universe())));
        // Static engine geometry, stamped onto exporter snapshots.
        lbq_obs::snapshot_field("serve-config-workers", pool.workers());
        lbq_obs::snapshot_field("serve-config-tile-size", config.tile_size.max(1));
        Engine {
            server,
            cache,
            pool,
            stats,
            batch_latency: lbq_obs::histogram("serve-query-latency"),
            tile_size: config.tile_size.max(1),
            tile_occupancy: lbq_obs::histogram("serve-tile-size"),
            next_query_id: AtomicU64::new(0),
            heat: lbq_obs::heatmap("serve-tile-heat"),
            hot,
        }
    }

    /// Queries per locality tile (see [`EngineConfig::tile_size`]).
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// The shared server (tree + universe) the engine answers from.
    pub fn server(&self) -> &Arc<LbqServer> {
        &self.server
    }

    /// The validity-region cache fronting the tree.
    pub fn cache(&self) -> &RegionCache {
        &self.cache
    }

    /// Point-in-time statistics of the hot-tile Voronoi tier. All-zero
    /// when the tier is disabled ([`HotConfig::disabled`]).
    pub fn hot_stats(&self) -> HotStats {
        self.hot
            .as_ref()
            .map_or_else(HotStats::default, |h| h.stats())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Serves a batch: fans `reqs` out across the workers and blocks
    /// until every request is answered. Responses come back in request
    /// order (the Hilbert tiling below is un-permuted before returning).
    /// Window extents must be positive (checked up front, before
    /// anything is enqueued).
    pub fn submit(&self, reqs: Vec<QueryReq>) -> Vec<QueryResp> {
        for r in &reqs {
            if let QueryReq::Window { hx, hy, .. } = *r {
                assert!(hx > 0.0 && hy > 0.0, "window extents must be positive");
            }
        }
        let n = reqs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut span = lbq_obs::span("serve-batch");
        span.record("batch-size", n as u64);
        let batch = Arc::new(Batch {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            done: Condvar::new(),
            done_lock: Mutex::new(false),
        });
        // Locality tiling: order the batch along the Hilbert curve of
        // the query foci so each tile covers one small patch of the
        // universe. Tile size 1 keeps submission order — exactly the
        // per-query dispatch of the untiled engine.
        let mut order: Vec<usize> = (0..n).collect();
        if self.tile_size > 1 {
            let universe = self.server.universe();
            order.sort_by_key(|&i| hilbert_key(reqs[i].focus(), &universe));
        }
        // One id per request, claimed in request order: response i of
        // this batch reports `first_id + i` no matter how the tiling
        // permutes or which worker serves it.
        let first_id = self.next_query_id.fetch_add(n as u64, Ordering::Relaxed);
        let jobs: Vec<Job> = order
            .chunks(self.tile_size)
            .map(|tile_idxs| {
                let job = TileJob {
                    tile: tile_idxs.iter().map(|&i| (i, reqs[i])).collect(),
                    server: Arc::clone(&self.server),
                    cache: Arc::clone(&self.cache),
                    stats: Arc::clone(&self.stats),
                    batch: Arc::clone(&batch),
                    latency: self.batch_latency.clone(),
                    occupancy: self.tile_occupancy.clone(),
                    first_id,
                    heat: self.heat.clone(),
                    hot: self.hot.as_ref().map(Arc::clone),
                };
                Box::new(
                    move |worker: usize,
                          scratch: &mut QueryScratch,
                          hot_scratch: &mut HotScratch| {
                        job.run(worker, scratch, hot_scratch);
                    },
                ) as Job
            })
            .collect();
        self.pool.push_all(jobs);

        let mut flag = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = batch.done.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
        drop(flag);

        let mut results = batch.results.lock().unwrap_or_else(|e| e.into_inner());
        let out: Vec<QueryResp> = results
            .drain(..)
            .map(|r| {
                // Remaining hit zero, so every slot was filled by its worker.
                // lbq-check: allow(no-unwrap-core) — AcqRel countdown proves every slot is Some
                r.expect("batch slot filled once remaining reaches zero")
            })
            .collect();
        let hits = out.iter().filter(|r| r.from_cache).count();
        span.record("cache-hits", hits as u64);
        record_hit_counters(hits as u64, (n - hits) as u64);
        out
    }

    /// Per-worker accounting snapshots, index-aligned with the threads.
    pub fn worker_summaries(&self) -> Vec<WorkerSummary> {
        self.stats
            .iter()
            .enumerate()
            .map(|(worker, ws)| WorkerSummary {
                worker,
                jobs: ws.jobs.load(Ordering::Relaxed),
                cache_hits: ws.cache_hits.load(Ordering::Relaxed),
                busy_ns: ws.busy_ns.load(Ordering::Relaxed),
                latency: ws.latency.summary(),
            })
            .collect()
    }

    /// Renders the per-worker table (jobs, hits, busy time, latency
    /// percentiles) in the workspace profile format.
    pub fn profile_table(&self) -> lbq_obs::ProfileTable {
        let mut t = lbq_obs::ProfileTable::new(
            "lbq-serve workers",
            &["worker", "jobs", "hits", "busy", "p50", "p95", "p99"],
        );
        for s in self.worker_summaries() {
            t.row(&[
                format!("lbq-serve-{}", s.worker),
                s.jobs.to_string(),
                s.cache_hits.to_string(),
                lbq_obs::fmt_ns(s.busy_ns),
                lbq_obs::fmt_ns(s.latency.p50_ns),
                lbq_obs::fmt_ns(s.latency.p95_ns),
                lbq_obs::fmt_ns(s.latency.p99_ns),
            ]);
        }
        t
    }

    /// Renders the aggregate per-stage latency table — the `stage-*`
    /// histograms fed by per-query attribution. All counts stay zero
    /// until recording is armed ([`lbq_obs::init_recorder`]).
    pub fn stage_table(&self) -> lbq_obs::ProfileTable {
        let mut t = lbq_obs::ProfileTable::new(
            "lbq-serve stages",
            &["stage", "count", "p50", "p95", "p99", "mean"],
        );
        for (name, h) in lbq_obs::STAGE_NAMES
            .iter()
            .zip(lbq_obs::stage_histograms().iter())
        {
            let s = h.summary();
            t.row(&[
                (*name).to_string(),
                s.count.to_string(),
                lbq_obs::fmt_ns(s.p50_ns),
                lbq_obs::fmt_ns(s.p95_ns),
                lbq_obs::fmt_ns(s.p99_ns),
                lbq_obs::fmt_ns(s.mean_ns),
            ]);
        }
        t
    }
}

/// One pool job: a Hilbert-adjacent tile of queries served on one
/// worker. Cache probes and window misses are answered query by query;
/// the tile's cache-miss kNN queries are deferred, grouped by `k`, and
/// answered through the shared-frontier group traversal.
struct TileJob {
    /// `(original batch index, request)`, in Hilbert order.
    tile: Vec<(usize, QueryReq)>,
    server: Arc<LbqServer>,
    cache: Arc<RegionCache>,
    stats: Arc<Vec<WorkerStats>>,
    batch: Arc<Batch>,
    latency: lbq_obs::Histogram,
    occupancy: lbq_obs::Histogram,
    /// Query id of the batch's first request (`id = first_id + idx`).
    first_id: u64,
    /// The engine's hot-tile heatmap, fed on the recording path.
    heat: lbq_obs::Heatmap,
    /// The engine's hot-tile Voronoi index (`None` = tier disabled).
    hot: Option<Arc<HotIndex>>,
}

/// Recording-path context for one response: everything `respond` needs
/// to stamp a [`QueryEvent`] into the flight recorder and heatmap.
/// `None` whenever recording is off, so the disabled path builds
/// nothing.
struct Attribution {
    req: QueryReq,
    tier: CacheTier,
    stages: StageNanos,
    /// Tree accesses attributed to this query. Deltas of the tree's
    /// process-wide counters, so concurrent workers can bleed into
    /// each other's deltas — per-query values are best-effort;
    /// aggregates are exact.
    accesses: Stats,
}

impl TileJob {
    fn run(self, worker: usize, scratch: &mut QueryScratch, hot_scratch: &mut HotScratch) {
        self.occupancy.record_value(self.tile.len() as u64);
        let out = self.serve(worker, scratch, hot_scratch);
        debug_assert_eq!(out.len(), self.tile.len());
        {
            let mut results = self.batch.results.lock().unwrap_or_else(|e| e.into_inner());
            for (idx, resp) in out {
                results[idx] = Some(resp);
            }
        }
        let served = self.tile.len();
        if self.batch.remaining.fetch_sub(served, Ordering::AcqRel) == served {
            let mut flag = self
                .batch
                .done_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *flag = true;
            drop(flag);
            self.batch.done.notify_all();
        }
    }

    /// Answers every query of the tile, returning `(original index,
    /// response)` pairs.
    fn serve(
        &self,
        worker: usize,
        scratch: &mut QueryScratch,
        hot_scratch: &mut HotScratch,
    ) -> Vec<(usize, QueryResp)> {
        let recording = lbq_obs::recording();
        if recording {
            // Discard stage time stranded on this thread by a
            // mid-flight recording toggle.
            let _ = lbq_obs::take_stages();
        }
        let mut out: Vec<(usize, QueryResp)> = Vec::with_capacity(self.tile.len());
        // Hot-tier hits and cache probes resolve in place, as do window
        // misses; kNN misses are deferred so the tile can answer them as
        // a group — each stashing the stage time of its probes and the
        // hot tile (if promoted) it should memoize its fresh answer into.
        let mut knn_miss: Vec<(usize, Point, usize, StageNanos, Option<Arc<HotTile>>)> = Vec::new();
        for &(idx, req) in &self.tile {
            let start = Instant::now();
            let before = if recording {
                self.server.tree().stats()
            } else {
                Stats::default()
            };
            // Hot-tile Voronoi probe, ahead of the region cache: point
            // location over the tile-local triangulation plus a
            // memoized-cell lookup. Any failure degrades silently to
            // the ordinary path below.
            let mut hot_tile: Option<Arc<HotTile>> = None;
            if let (Some(hot), QueryReq::Knn { q, k }) = (&self.hot, req) {
                let _probe = lbq_obs::stage_timer(lbq_obs::Stage::HotLookup);
                if let Some(tile) = hot.probe(hot.tile_of(q), &self.server) {
                    match tile.lookup(q, k, hot_scratch) {
                        Some(answer) => {
                            hot.record_hit();
                            record_hot_counters(1, 0);
                            drop(_probe);
                            let attr = recording.then(|| Attribution {
                                req,
                                tier: CacheTier::HotVoronoi,
                                stages: lbq_obs::take_stages(),
                                accesses: self.server.tree().stats().delta_since(before),
                            });
                            out.push((
                                idx,
                                self.respond(
                                    answer,
                                    CacheTier::HotVoronoi,
                                    worker,
                                    elapsed_ns(start),
                                    idx,
                                    attr,
                                ),
                            ));
                            continue;
                        }
                        None => {
                            hot.record_miss();
                            record_hot_counters(0, 1);
                            hot_tile = Some(tile);
                        }
                    }
                }
            }
            let hit = {
                let _probe = lbq_obs::stage_timer(lbq_obs::Stage::CacheLookup);
                self.cache.lookup(&req)
            };
            match hit {
                Some(hit) => {
                    let attr = recording.then(|| Attribution {
                        req,
                        tier: CacheTier::Cache,
                        stages: lbq_obs::take_stages(),
                        accesses: self.server.tree().stats().delta_since(before),
                    });
                    out.push((
                        idx,
                        self.respond(hit, CacheTier::Cache, worker, elapsed_ns(start), idx, attr),
                    ));
                }
                None => match req {
                    QueryReq::Knn { q, k } => {
                        let probe = if recording {
                            lbq_obs::take_stages()
                        } else {
                            StageNanos::default()
                        };
                        knn_miss.push((idx, q, k, probe, hot_tile));
                    }
                    QueryReq::Window { .. } => {
                        let fresh = Arc::new(answer_on_with(&self.server, &req, scratch));
                        self.cache.insert(&req, Arc::clone(&fresh));
                        let attr = recording.then(|| Attribution {
                            req,
                            tier: CacheTier::Tree,
                            stages: lbq_obs::take_stages(),
                            accesses: self.server.tree().stats().delta_since(before),
                        });
                        out.push((
                            idx,
                            self.respond(
                                fresh,
                                CacheTier::Tree,
                                worker,
                                elapsed_ns(start),
                                idx,
                                attr,
                            ),
                        ));
                    }
                },
            }
        }
        // Group the deferred kNN misses by k (preserving Hilbert order
        // within each group) and answer each group in one traversal.
        let mut handled = vec![false; knn_miss.len()];
        for i in 0..knn_miss.len() {
            if handled[i] {
                continue;
            }
            let k = knn_miss[i].2;
            let group: Vec<usize> = (i..knn_miss.len())
                .filter(|&j| !handled[j] && knn_miss[j].2 == k)
                .collect();
            for &j in &group {
                handled[j] = true;
            }
            if group.len() == 1 {
                let (idx, q, _, probe, ref hot_tile) = knn_miss[i];
                let req = QueryReq::knn(q, k);
                let start = Instant::now();
                let before = if recording {
                    self.server.tree().stats()
                } else {
                    Stats::default()
                };
                let fresh = Arc::new(answer_on_with(&self.server, &req, scratch));
                self.cache.insert(&req, Arc::clone(&fresh));
                if let (Some(hot), Some(tile)) = (&self.hot, hot_tile) {
                    hot.memoize(tile, k, &fresh);
                }
                let attr = recording.then(|| Attribution {
                    req,
                    tier: CacheTier::Tree,
                    // The stashed probe time plus this query's own
                    // tree traversal.
                    stages: probe.saturating_add(lbq_obs::take_stages()),
                    accesses: self.server.tree().stats().delta_since(before),
                });
                out.push((
                    idx,
                    self.respond(fresh, CacheTier::Tree, worker, elapsed_ns(start), idx, attr),
                ));
                continue;
            }
            // Shared-frontier kNN for the whole group, then per-query
            // validity regions. Results are bit-identical to per-query
            // `knn_in` (see `lbq_rtree::RTree::knn_group_in`).
            let points: Vec<Point> = group.iter().map(|&j| knn_miss[j].1).collect();
            let t_group = Instant::now();
            let before = if recording {
                self.server.tree().stats()
            } else {
                Stats::default()
            };
            let stride = k.min(self.server.tree().len());
            let results: Vec<Vec<Item>> = if stride == 0 {
                vec![Vec::new(); points.len()]
            } else {
                self.server
                    .tree()
                    .knn_group_in(&points, k, scratch)
                    .chunks(stride)
                    .map(|c| c.iter().map(|&(it, _)| it).collect())
                    .collect()
            };
            record_group_knn(group.len() as u64);
            // Grouped validity regions: the members' TPNN probes run in
            // shared-frontier rounds, giving responses byte-identical to
            // the per-query path (see
            // `LbqServer::knn_responses_from_results_group_in`). Both
            // traversals served every member at once; amortize their
            // cost evenly across the group for per-query latency — and
            // for stage attribution and tree-access deltas alike.
            let resps = self
                .server
                .knn_responses_from_results_group_in(&points, results, scratch);
            let members = group.len() as u64;
            let shared_ns = elapsed_ns(t_group) / members;
            let (shared_stages, shared_accesses) = if recording {
                let d = self.server.tree().stats().delta_since(before);
                (
                    lbq_obs::take_stages().amortized(members),
                    Stats {
                        node_accesses: d.node_accesses / members,
                        page_faults: d.page_faults / members,
                    },
                )
            } else {
                (StageNanos::default(), Stats::default())
            };
            for (&j, resp) in group.iter().zip(resps) {
                let (idx, q, _, probe, ref hot_tile) = knn_miss[j];
                let fresh = Arc::new(QueryAnswer::Knn(resp));
                let req = QueryReq::knn(q, k);
                self.cache.insert(&req, Arc::clone(&fresh));
                if let (Some(hot), Some(tile)) = (&self.hot, hot_tile) {
                    hot.memoize(tile, k, &fresh);
                }
                let attr = recording.then(|| Attribution {
                    req,
                    tier: CacheTier::TreeGroup,
                    stages: probe.saturating_add(shared_stages),
                    accesses: shared_accesses,
                });
                out.push((
                    idx,
                    self.respond(fresh, CacheTier::TreeGroup, worker, shared_ns, idx, attr),
                ));
            }
        }
        out
    }

    /// Builds one response and feeds the per-worker + global accounting
    /// (jobs are counted per *query*, not per tile). `tier` is the
    /// answer's provenance, stamped onto the response; with recording
    /// on, `attr` carries the stage/tier/access context this query
    /// stamps into the flight recorder and hot-tile heatmap.
    fn respond(
        &self,
        answer: Arc<QueryAnswer>,
        tier: CacheTier,
        worker: usize,
        elapsed: u64,
        idx: usize,
        attr: Option<Attribution>,
    ) -> QueryResp {
        let from_cache = tier == CacheTier::Cache;
        let ws = &self.stats[worker];
        ws.jobs.fetch_add(1, Ordering::Relaxed);
        ws.cache_hits
            .fetch_add(u64::from(from_cache), Ordering::Relaxed);
        ws.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
        ws.latency.record_ns(elapsed);
        self.latency.record_ns(elapsed);
        let query_id = self.first_id + idx as u64;
        let stages = attr.as_ref().map_or_else(StageNanos::default, |a| a.stages);
        if let Some(a) = attr {
            let universe = self.server.universe();
            let tile =
                lbq_obs::Heatmap::tile_of_key(hilbert_key(a.req.focus(), &universe), 2 * KEY_ORDER);
            self.heat.record(tile, elapsed);
            let (kind, k) = match a.req {
                QueryReq::Knn { k, .. } => (QueryKind::Knn, sat32(k as u64)),
                QueryReq::Window { .. } => (QueryKind::Window, 0),
            };
            lbq_obs::record_query(&QueryEvent {
                query_id,
                kind,
                k,
                tier: a.tier,
                tile,
                latency_ns: elapsed,
                node_accesses: sat32(a.accesses.node_accesses),
                page_accesses: sat32(a.accesses.page_faults),
                stages,
            });
        }
        QueryResp {
            answer,
            from_cache,
            tier,
            worker,
            latency_ns: elapsed,
            query_id,
            stages,
        }
    }
}

/// Saturating narrowing for recorder fields (k, access counts).
fn sat32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Counts queries answered through the shared-frontier group-kNN path
/// (cached handle: metric lookup once per process).
fn record_group_knn(count: u64) {
    use std::sync::OnceLock;
    static GROUP: OnceLock<lbq_obs::Counter> = OnceLock::new();
    GROUP
        .get_or_init(|| lbq_obs::counter("serve-group-knn"))
        .add(count);
}

/// Feeds the hot-tier hit/miss counters (cached handles: metric lookup
/// once per process, not per probe).
fn record_hot_counters(hits: u64, misses: u64) {
    use std::sync::OnceLock;
    static HIT: OnceLock<lbq_obs::Counter> = OnceLock::new();
    static MISS: OnceLock<lbq_obs::Counter> = OnceLock::new();
    HIT.get_or_init(|| lbq_obs::counter("serve-hot-hit"))
        .add(hits);
    MISS.get_or_init(|| lbq_obs::counter("serve-hot-miss"))
        .add(misses);
}

/// Feeds the global hit/miss counters (cached handles: metric lookup
/// once per process, not per batch).
fn record_hit_counters(hits: u64, misses: u64) {
    use std::sync::OnceLock;
    static HIT: OnceLock<lbq_obs::Counter> = OnceLock::new();
    static MISS: OnceLock<lbq_obs::Counter> = OnceLock::new();
    HIT.get_or_init(|| lbq_obs::counter("serve-cache-hit"))
        .add(hits);
    MISS.get_or_init(|| lbq_obs::counter("serve-cache-miss"))
        .add(misses);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer_on;
    use lbq_geom::{Point, Rect};
    use lbq_rtree::{Item, RTree, RTreeConfig};

    fn grid_engine(workers: usize, cache: CacheConfig) -> Engine {
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let items: Vec<Item> = (0..100)
            .map(|i| Item::new(Point::new((i % 10) as f64, (i / 10) as f64), i))
            .collect();
        let server = Arc::new(LbqServer::new(
            RTree::bulk_load(items, RTreeConfig::tiny()),
            universe,
        ));
        Engine::new(
            server,
            EngineConfig {
                workers,
                cache,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let engine = grid_engine(2, CacheConfig::default());
        assert!(engine.submit(Vec::new()).is_empty());
    }

    #[test]
    fn batch_answers_in_request_order() {
        let engine = grid_engine(3, CacheConfig::disabled());
        let reqs: Vec<QueryReq> = (0..40)
            .map(|i| QueryReq::knn(Point::new((i % 10) as f64 + 0.3, (i / 4) as f64 * 0.9), 1))
            .collect();
        let resps = engine.submit(reqs.clone());
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            let expect = answer_on(engine.server(), req);
            assert_eq!(resp.answer.result_ids(), expect.result_ids());
            assert!(!resp.from_cache);
        }
    }

    #[test]
    fn repeat_batch_is_served_from_cache() {
        let engine = grid_engine(2, CacheConfig::default());
        // Distinct foci in distinct Voronoi cells: the first batch
        // cannot hit (not even on its own insertions).
        let reqs: Vec<QueryReq> = (0..5)
            .map(|i| QueryReq::knn(Point::new(1.0 + i as f64 * 2.0, 5.1), 2))
            .collect();
        let first = engine.submit(reqs.clone());
        assert!(first.iter().all(|r| !r.from_cache));
        let second = engine.submit(reqs);
        assert!(
            second.iter().all(|r| r.from_cache),
            "identical foci must hit"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.answer.result_ids(), b.answer.result_ids());
        }
    }

    #[test]
    fn query_ids_are_request_ordered_and_unique_across_batches() {
        let engine = grid_engine(3, CacheConfig::default());
        let reqs: Vec<QueryReq> = (0..25)
            .map(|i| {
                QueryReq::knn(
                    Point::new((i % 5) as f64 * 1.9 + 0.4, (i / 5) as f64 * 1.7),
                    2,
                )
            })
            .collect();
        let first = engine.submit(reqs.clone());
        // Ids follow request order regardless of the Hilbert permutation.
        let ids: Vec<u64> = first.iter().map(|r| r.query_id).collect();
        assert_eq!(ids, (0..25).collect::<Vec<u64>>());
        // The next batch continues where the first left off.
        let second = engine.submit(reqs);
        let ids: Vec<u64> = second.iter().map(|r| r.query_id).collect();
        assert_eq!(ids, (25..50).collect::<Vec<u64>>());
    }

    #[test]
    fn stages_are_zero_when_recording_is_off() {
        // Engine unit tests share the process with other lbq-serve unit
        // tests, none of which arm recording — so stages must be zeros.
        // (The recording-on path is exercised by the serve integration
        // tests, which run in their own process.)
        let engine = grid_engine(2, CacheConfig::default());
        let resps = engine.submit(vec![
            QueryReq::knn(Point::new(4.2, 5.1), 3),
            QueryReq::window(Point::new(5.0, 5.0), 1.5, 1.5),
        ]);
        assert!(resps.iter().all(|r| r.stages.is_zero()));
    }

    #[test]
    #[should_panic(expected = "window extents must be positive")]
    fn rejects_degenerate_window_before_enqueue() {
        let engine = grid_engine(1, CacheConfig::default());
        let _ = engine.submit(vec![QueryReq::window(Point::new(5.0, 5.0), 0.0, 1.0)]);
    }

    #[test]
    fn worker_accounting_adds_up() {
        let engine = grid_engine(2, CacheConfig::default());
        let reqs: Vec<QueryReq> = (0..30)
            .map(|i| QueryReq::window(Point::new((i % 6) as f64 + 2.0, 5.0), 1.2, 1.2))
            .collect();
        let resps = engine.submit(reqs);
        let summaries = engine.worker_summaries();
        let total: u64 = summaries.iter().map(|s| s.jobs).sum();
        assert_eq!(total, 30);
        let hits: u64 = summaries.iter().map(|s| s.cache_hits).sum();
        assert_eq!(hits, resps.iter().filter(|r| r.from_cache).count() as u64);
        let table = engine.profile_table().render();
        assert!(table.contains("lbq-serve-0"));
    }
}
