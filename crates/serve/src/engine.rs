//! The batch engine: pool + cache + shared tree, glued together.

use crate::cache::{CacheConfig, RegionCache};
use crate::pool::{Job, Pool};
use crate::{answer_on_with, QueryReq, QueryResp};
use lbq_core::LbqServer;
use lbq_obs::HistogramSummary;
use lbq_rtree::QueryScratch;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Sizing of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Validity-region cache geometry ([`CacheConfig::disabled`] turns
    /// the cache off, e.g. for measuring raw tree throughput).
    pub cache: CacheConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache: CacheConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `workers` threads and the default cache.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }
}

/// Per-worker accounting, aggregated lock-free by the workers.
#[derive(Debug, Default)]
struct WorkerStats {
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    busy_ns: AtomicU64,
    latency: lbq_obs::Histogram,
}

/// A point-in-time copy of one worker's counters, for reporting.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Worker index (thread `lbq-serve-<worker>`).
    pub worker: usize,
    /// Requests served.
    pub jobs: u64,
    /// Requests answered from the region cache.
    pub cache_hits: u64,
    /// Total busy time, nanoseconds.
    pub busy_ns: u64,
    /// Service-latency distribution of this worker.
    pub latency: HistogramSummary,
}

/// State shared between `submit` and the jobs of one batch.
struct Batch {
    results: Mutex<Vec<Option<QueryResp>>>,
    remaining: AtomicUsize,
    done: Condvar,
    done_lock: Mutex<bool>,
}

/// The concurrent batched query engine. See the crate docs for the
/// architecture; construction is [`Engine::new`], the entry point is
/// [`Engine::submit`].
#[derive(Debug)]
pub struct Engine {
    server: Arc<LbqServer>,
    cache: Arc<RegionCache>,
    pool: Pool,
    stats: Arc<Vec<WorkerStats>>,
    batch_latency: lbq_obs::Histogram,
}

impl Engine {
    /// Builds an engine over `server` with `config` workers and cache.
    pub fn new(server: Arc<LbqServer>, config: EngineConfig) -> Self {
        let pool = Pool::new(config.workers);
        let stats = Arc::new(
            (0..pool.workers())
                .map(|_| WorkerStats::default())
                .collect::<Vec<_>>(),
        );
        let cache = Arc::new(RegionCache::new(server.universe(), config.cache));
        Engine {
            server,
            cache,
            pool,
            stats,
            batch_latency: lbq_obs::histogram("serve-query-latency"),
        }
    }

    /// The shared server (tree + universe) the engine answers from.
    pub fn server(&self) -> &Arc<LbqServer> {
        &self.server
    }

    /// The validity-region cache fronting the tree.
    pub fn cache(&self) -> &RegionCache {
        &self.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Serves a batch: fans `reqs` out across the workers and blocks
    /// until every request is answered. Responses come back in request
    /// order. Window extents must be positive (checked up front, before
    /// anything is enqueued).
    pub fn submit(&self, reqs: Vec<QueryReq>) -> Vec<QueryResp> {
        for r in &reqs {
            if let QueryReq::Window { hx, hy, .. } = *r {
                assert!(hx > 0.0 && hy > 0.0, "window extents must be positive");
            }
        }
        let n = reqs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut span = lbq_obs::span("serve-batch");
        span.record("batch-size", n as u64);
        let batch = Arc::new(Batch {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            done: Condvar::new(),
            done_lock: Mutex::new(false),
        });
        let jobs: Vec<Job> = reqs
            .into_iter()
            .enumerate()
            .map(|(idx, req)| {
                let batch = Arc::clone(&batch);
                let server = Arc::clone(&self.server);
                let cache = Arc::clone(&self.cache);
                let stats = Arc::clone(&self.stats);
                let latency = self.batch_latency.clone();
                Box::new(move |worker: usize, scratch: &mut QueryScratch| {
                    let start = Instant::now();
                    let (answer, from_cache) = match cache.lookup(&req) {
                        Some(hit) => (hit, true),
                        None => {
                            let fresh = Arc::new(answer_on_with(&server, &req, scratch));
                            cache.insert(&req, Arc::clone(&fresh));
                            (fresh, false)
                        }
                    };
                    let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let ws = &stats[worker];
                    ws.jobs.fetch_add(1, Ordering::Relaxed);
                    ws.cache_hits
                        .fetch_add(u64::from(from_cache), Ordering::Relaxed);
                    ws.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
                    ws.latency.record_ns(elapsed);
                    latency.record_ns(elapsed);
                    let resp = QueryResp {
                        answer,
                        from_cache,
                        worker,
                        latency_ns: elapsed,
                    };
                    {
                        let mut results = batch.results.lock().unwrap_or_else(|e| e.into_inner());
                        results[idx] = Some(resp);
                    }
                    if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let mut flag = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
                        *flag = true;
                        drop(flag);
                        batch.done.notify_all();
                    }
                }) as Job
            })
            .collect();
        self.pool.push_all(jobs);

        let mut flag = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = batch.done.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
        drop(flag);

        let mut results = batch.results.lock().unwrap_or_else(|e| e.into_inner());
        let out: Vec<QueryResp> = results
            .drain(..)
            .map(|r| {
                // Remaining hit zero, so every slot was filled by its worker.
                // lbq-check: allow(no-unwrap-core)
                r.expect("batch slot filled once remaining reaches zero")
            })
            .collect();
        let hits = out.iter().filter(|r| r.from_cache).count();
        span.record("cache-hits", hits as u64);
        record_hit_counters(hits as u64, (n - hits) as u64);
        out
    }

    /// Per-worker accounting snapshots, index-aligned with the threads.
    pub fn worker_summaries(&self) -> Vec<WorkerSummary> {
        self.stats
            .iter()
            .enumerate()
            .map(|(worker, ws)| WorkerSummary {
                worker,
                jobs: ws.jobs.load(Ordering::Relaxed),
                cache_hits: ws.cache_hits.load(Ordering::Relaxed),
                busy_ns: ws.busy_ns.load(Ordering::Relaxed),
                latency: ws.latency.summary(),
            })
            .collect()
    }

    /// Renders the per-worker table (jobs, hits, busy time, latency
    /// percentiles) in the workspace profile format.
    pub fn profile_table(&self) -> lbq_obs::ProfileTable {
        let mut t = lbq_obs::ProfileTable::new(
            "lbq-serve workers",
            &["worker", "jobs", "hits", "busy", "p50", "p95", "p99"],
        );
        for s in self.worker_summaries() {
            t.row(&[
                format!("lbq-serve-{}", s.worker),
                s.jobs.to_string(),
                s.cache_hits.to_string(),
                lbq_obs::fmt_ns(s.busy_ns),
                lbq_obs::fmt_ns(s.latency.p50_ns),
                lbq_obs::fmt_ns(s.latency.p95_ns),
                lbq_obs::fmt_ns(s.latency.p99_ns),
            ]);
        }
        t
    }
}

/// Feeds the global hit/miss counters (cached handles: metric lookup
/// once per process, not per batch).
fn record_hit_counters(hits: u64, misses: u64) {
    use std::sync::OnceLock;
    static HIT: OnceLock<lbq_obs::Counter> = OnceLock::new();
    static MISS: OnceLock<lbq_obs::Counter> = OnceLock::new();
    HIT.get_or_init(|| lbq_obs::counter("serve-cache-hit"))
        .add(hits);
    MISS.get_or_init(|| lbq_obs::counter("serve-cache-miss"))
        .add(misses);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer_on;
    use lbq_geom::{Point, Rect};
    use lbq_rtree::{Item, RTree, RTreeConfig};

    fn grid_engine(workers: usize, cache: CacheConfig) -> Engine {
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let items: Vec<Item> = (0..100)
            .map(|i| Item::new(Point::new((i % 10) as f64, (i / 10) as f64), i))
            .collect();
        let server = Arc::new(LbqServer::new(
            RTree::bulk_load(items, RTreeConfig::tiny()),
            universe,
        ));
        Engine::new(server, EngineConfig { workers, cache })
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let engine = grid_engine(2, CacheConfig::default());
        assert!(engine.submit(Vec::new()).is_empty());
    }

    #[test]
    fn batch_answers_in_request_order() {
        let engine = grid_engine(3, CacheConfig::disabled());
        let reqs: Vec<QueryReq> = (0..40)
            .map(|i| QueryReq::knn(Point::new((i % 10) as f64 + 0.3, (i / 4) as f64 * 0.9), 1))
            .collect();
        let resps = engine.submit(reqs.clone());
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            let expect = answer_on(engine.server(), req);
            assert_eq!(resp.answer.result_ids(), expect.result_ids());
            assert!(!resp.from_cache);
        }
    }

    #[test]
    fn repeat_batch_is_served_from_cache() {
        let engine = grid_engine(2, CacheConfig::default());
        // Distinct foci in distinct Voronoi cells: the first batch
        // cannot hit (not even on its own insertions).
        let reqs: Vec<QueryReq> = (0..5)
            .map(|i| QueryReq::knn(Point::new(1.0 + i as f64 * 2.0, 5.1), 2))
            .collect();
        let first = engine.submit(reqs.clone());
        assert!(first.iter().all(|r| !r.from_cache));
        let second = engine.submit(reqs);
        assert!(
            second.iter().all(|r| r.from_cache),
            "identical foci must hit"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.answer.result_ids(), b.answer.result_ids());
        }
    }

    #[test]
    #[should_panic(expected = "window extents must be positive")]
    fn rejects_degenerate_window_before_enqueue() {
        let engine = grid_engine(1, CacheConfig::default());
        let _ = engine.submit(vec![QueryReq::window(Point::new(5.0, 5.0), 0.0, 1.0)]);
    }

    #[test]
    fn worker_accounting_adds_up() {
        let engine = grid_engine(2, CacheConfig::default());
        let reqs: Vec<QueryReq> = (0..30)
            .map(|i| QueryReq::window(Point::new((i % 6) as f64 + 2.0, 5.0), 1.2, 1.2))
            .collect();
        let resps = engine.submit(reqs);
        let summaries = engine.worker_summaries();
        let total: u64 = summaries.iter().map(|s| s.jobs).sum();
        assert_eq!(total, 30);
        let hits: u64 = summaries.iter().map(|s| s.cache_hits).sum();
        assert_eq!(hits, resps.iter().filter(|r| r.from_cache).count() as u64);
        let table = engine.profile_table().render();
        assert!(table.contains("lbq-serve-0"));
    }
}
