//! The sharded LRU validity-region cache.
//!
//! The paper's client caches its own last response and re-uses it while
//! it stays inside the validity region. Server-side, the same check
//! works *across* clients: any query whose focus falls inside a cached
//! region — and whose parameters (k, or window extents) match the
//! anchor query's — can be answered from the cache, because the region
//! is precisely the locus where that result set is invariant
//! (Lemmas 3.1–3.2 for kNN; the inner-rectangle-minus-Minkowski-holes
//! argument of Section 4 for windows).
//!
//! ## Sharding
//!
//! Entries are keyed spatially: the universe is cut into a `grid ×
//! grid` lattice, each cell maps to one of `shards` lock-striped
//! shards, and an entry is replicated into **every shard its region's
//! bounding box overlaps** (validity regions are small — O(1/N) of the
//! universe, the paper's Section 5 — so that is 1–4 shards in
//! practice, each copy an `Arc` bump). A lookup therefore probes
//! exactly one shard: the one owning the incoming focus's cell.
//! Containment is tested exactly against the cached region, so a probe
//! can never return a wrong answer — at worst an evicted replica turns
//! a would-be hit into a recomputation.
//!
//! Each shard is independently LRU: a logical clock stamps hits and
//! inserts, and insertion past capacity evicts the stalest entry of
//! that shard only.

use crate::{QueryAnswer, QueryReq};
use lbq_geom::{Point, Rect};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Geometry and capacity of a [`RegionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of lock-striped shards (clamped to ≥ 1).
    pub shards: usize,
    /// Entries held per shard; `0` disables the cache entirely.
    pub per_shard: usize,
    /// Lattice resolution used to map a focus to a shard: the universe
    /// is split into `grid × grid` cells (clamped to ≥ 1).
    pub grid: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            per_shard: 64,
            grid: 64,
        }
    }
}

impl CacheConfig {
    /// A disabled cache (every lookup misses, inserts are dropped).
    pub fn disabled() -> Self {
        CacheConfig {
            shards: 1,
            per_shard: 0,
            grid: 1,
        }
    }
}

/// Parameter key of a cached entry: a region only revalidates queries
/// of the same kind and shape. Window extents are compared bit-exact
/// (`f64::to_bits`): a client re-issuing "the same" window sends the
/// same bits; anything else is a different query shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamKey {
    Knn { k: usize },
    Window { hx: u64, hy: u64 },
}

impl ParamKey {
    fn of(req: &QueryReq) -> ParamKey {
        match *req {
            QueryReq::Knn { k, .. } => ParamKey::Knn { k },
            QueryReq::Window { hx, hy, .. } => ParamKey::Window {
                hx: hx.to_bits(),
                hy: hy.to_bits(),
            },
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: ParamKey,
    answer: Arc<QueryAnswer>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: Vec<Entry>,
}

/// Point-in-time hit/miss/insert counters of a [`RegionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a cached region.
    pub hits: u64,
    /// Lookups that fell through to the tree.
    pub misses: u64,
    /// Entries inserted (evictions are `inserts − resident`).
    pub inserts: u64,
}

/// The sharded LRU validity-region cache. See the module docs for the
/// sharding and correctness story.
#[derive(Debug)]
pub struct RegionCache {
    config: CacheConfig,
    universe: Rect,
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

// Compile-time proof of the sharding story: every worker thread probes
// the cache concurrently through an `Arc<RegionCache>`, and each shard
// crosses threads inside its `Mutex` — so both must stay Send + Sync
// (the shard's `Arc<QueryAnswer>` payloads are the part that could
// silently regress).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RegionCache>();
    assert_send_sync::<Shard>();
};

impl RegionCache {
    /// Creates an empty cache over `universe` (the lattice spans it).
    pub fn new(universe: Rect, config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        RegionCache {
            config,
            universe,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// `true` when the cache stores nothing (`per_shard == 0`).
    pub fn is_disabled(&self) -> bool {
        self.config.per_shard == 0
    }

    /// Lattice cell of a point, clamped to the universe.
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let g = self.config.grid.max(1);
        let w = (self.universe.width() / g as f64).max(f64::MIN_POSITIVE);
        let h = (self.universe.height() / g as f64).max(f64::MIN_POSITIVE);
        let cx = (((p.x - self.universe.xmin) / w).floor().max(0.0) as usize).min(g - 1);
        let cy = (((p.y - self.universe.ymin) / h).floor().max(0.0) as usize).min(g - 1);
        (cx, cy)
    }

    /// Shard index of a lattice cell.
    fn shard_of_cell(&self, (cx, cy): (usize, usize)) -> usize {
        (cx.wrapping_mul(31).wrapping_add(cy)) % self.shards.len()
    }

    /// Shard index of a focus point: lattice cell, hashed over shards.
    fn shard_of(&self, p: Point) -> usize {
        self.shard_of_cell(self.cell_of(p))
    }

    /// The distinct shards whose cells `bbox` overlaps. A validity
    /// region usually spans 1–4 cells; a degenerate huge region (empty
    /// dataset) is bounded by the shard count itself.
    fn shards_of_region(&self, bbox: &Rect) -> Vec<usize> {
        let (x0, y0) = self.cell_of(Point::new(bbox.xmin, bbox.ymin));
        let (x1, y1) = self.cell_of(Point::new(bbox.xmax, bbox.ymax));
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                let s = self.shard_of_cell((cx, cy));
                if !out.contains(&s) {
                    out.push(s);
                }
                if out.len() == self.shards.len() {
                    return out; // every shard already covered
                }
            }
        }
        out
    }

    fn lock(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Probes the cache for a response whose validity region contains
    /// `req`'s focus and whose parameters match. A hit refreshes the
    /// entry's LRU stamp and returns the shared answer.
    pub fn lookup(&self, req: &QueryReq) -> Option<Arc<QueryAnswer>> {
        if self.is_disabled() {
            return None;
        }
        let focus = req.focus();
        let key = ParamKey::of(req);
        let mut shard = self.lock(self.shard_of(focus));
        let found = shard
            .entries
            .iter_mut()
            // lbq-check: allow(guard-across-call) — valid_at is pure geometry (no locks, no tree access); the guard must span the probe so the LRU stamp updates atomically with the match
            .find(|e| e.key == key && e.answer.valid_at(focus));
        match found {
            Some(e) => {
                e.stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.answer))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed answer, keyed by the request that
    /// produced it. The entry is replicated (an `Arc` bump per copy)
    /// into every shard whose cells the region's bounding box overlaps,
    /// so a later focus anywhere inside the region probes a shard that
    /// holds it. Full shards evict their LRU entry.
    pub fn insert(&self, req: &QueryReq, answer: Arc<QueryAnswer>) {
        if self.is_disabled() {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let key = ParamKey::of(req);
        let targets = match answer.region_bbox() {
            Some(bbox) => self.shards_of_region(&bbox),
            None => vec![self.shard_of(req.focus())],
        };
        for idx in targets {
            let mut shard = self.lock(idx);
            if shard.entries.len() >= self.config.per_shard {
                if let Some(lru) = shard
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                {
                    shard.entries.swap_remove(lru);
                }
            }
            shard.entries.push(Entry {
                key,
                answer: Arc::clone(&answer),
                stamp,
            });
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).entries.clear();
        }
    }

    /// Entries currently resident across all shards.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Hit/miss/insert counters since creation.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer_on;
    use lbq_core::LbqServer;
    use lbq_rtree::{Item, RTree, RTreeConfig};

    fn grid_server() -> LbqServer {
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let items: Vec<Item> = (0..100)
            .map(|i| Item::new(Point::new((i % 10) as f64, (i / 10) as f64), i))
            .collect();
        LbqServer::new(RTree::bulk_load(items, RTreeConfig::tiny()), universe)
    }

    #[test]
    fn hit_inside_region_miss_outside() {
        let server = grid_server();
        let cache = RegionCache::new(server.universe(), CacheConfig::default());
        let anchor = QueryReq::knn(Point::new(4.1, 4.2), 1);
        let ans = Arc::new(answer_on(&server, &anchor));
        cache.insert(&anchor, Arc::clone(&ans));

        // Same Voronoi cell (of the point (4,4)): hit, same answer.
        let near = QueryReq::knn(Point::new(4.2, 4.1), 1);
        let hit = cache.lookup(&near).expect("inside region must hit");
        assert_eq!(hit.result_ids(), ans.result_ids());

        // Far focus: different result, must miss.
        assert!(cache
            .lookup(&QueryReq::knn(Point::new(8.9, 8.9), 1))
            .is_none());
        // Same focus, different k: different query shape, must miss.
        assert!(cache
            .lookup(&QueryReq::knn(Point::new(4.2, 4.1), 2))
            .is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn disabled_cache_never_stores() {
        let server = grid_server();
        let cache = RegionCache::new(server.universe(), CacheConfig::disabled());
        let req = QueryReq::knn(Point::new(4.1, 4.2), 1);
        cache.insert(&req, Arc::new(answer_on(&server, &req)));
        assert_eq!(cache.resident(), 0);
        assert!(cache.lookup(&req).is_none());
    }

    #[test]
    fn lru_evicts_per_shard() {
        let server = grid_server();
        // One shard, two slots: the third insert evicts the stalest.
        let cache = RegionCache::new(
            server.universe(),
            CacheConfig {
                shards: 1,
                per_shard: 2,
                grid: 1,
            },
        );
        let reqs = [
            QueryReq::knn(Point::new(1.1, 1.1), 1),
            QueryReq::knn(Point::new(5.1, 5.1), 1),
            QueryReq::knn(Point::new(8.1, 8.1), 1),
        ];
        for r in &reqs[..2] {
            cache.insert(r, Arc::new(answer_on(&server, r)));
        }
        // Touch the first so the second becomes LRU.
        assert!(cache.lookup(&reqs[0]).is_some());
        cache.insert(&reqs[2], Arc::new(answer_on(&server, &reqs[2])));
        assert_eq!(cache.resident(), 2);
        assert!(cache.lookup(&reqs[0]).is_some(), "recently used survives");
        assert!(cache.lookup(&reqs[1]).is_none(), "LRU entry evicted");
    }

    #[test]
    fn window_hits_respect_extent_bits() {
        let server = grid_server();
        let cache = RegionCache::new(server.universe(), CacheConfig::default());
        let anchor = QueryReq::window(Point::new(5.0, 5.0), 1.5, 1.5);
        cache.insert(&anchor, Arc::new(answer_on(&server, &anchor)));
        // Nudged focus inside the inner rectangle: hit.
        assert!(cache
            .lookup(&QueryReq::window(Point::new(5.05, 4.95), 1.5, 1.5))
            .is_some());
        // Same focus, different extents: miss.
        assert!(cache
            .lookup(&QueryReq::window(Point::new(5.0, 5.0), 1.6, 1.5))
            .is_none());
    }
}
