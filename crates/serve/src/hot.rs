//! Hot-tile hybrid index: lazily materialized order-k Voronoi cells
//! answered by point location (DESIGN.md §16).
//!
//! The on-line pipeline computes a kNN answer *and* its validity
//! region — the order-k Voronoi cell of the result set — from scratch
//! for every cache miss (~17.5 µs at paper scale, BENCH_PR5). Traffic
//! is not uniform: the Hilbert-tile heatmap (PR 7) shows fleets
//! concentrating in a handful of tiles. This module closes that loop:
//! tiles whose always-on traffic counters cross a promotion threshold
//! get a **tile-local Delaunay triangulation** of the sites in their
//! (margin-expanded) footprint, and every on-line answer served from a
//! promoted tile is memoized under its order-k identity — the set of
//! result ids. A later query in the tile runs greedy point location +
//! best-first k-set expansion over the local triangulation
//! (`lbq_voronoi::Delaunay::k_nearest_sites_in`, `O(k log k)`), looks
//! the set up, and — **only if the stored region provably contains the
//! query** — returns the stored answer without touching the R-tree.
//!
//! Correctness is *not* carried by the point location: a hot hit is
//! served only when `QueryAnswer::valid_at(q)` holds, and the stored
//! answer is a genuine on-line response, so by the validity-region
//! guarantee (paper Lemma 3.1) the result set at `q` is bit-identical
//! to what the full pipeline would produce. The located k-set is a
//! lookup *key*; if the tile-local view is unsound for `q` (an
//! unfetched site could intrude, a distance tie at the k-th rank, a
//! duplicate group straddling the cut) the lookup misses and the query
//! degrades to the cold path. Like the region cache, a hit returns the
//! response **anchored at the original query** (see [`QueryAnswer`]).
//!
//! Demotion mirrors promotion: counters decay by half on a fixed
//! cadence, and a hot tile whose decayed traffic drops below the
//! demotion floor is dropped — in-flight lookups keep their `Arc`,
//! promotion can happen again later, and churn never affects result
//! bytes (pinned by `tests/hot.rs`).

use crate::QueryAnswer;
use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_obs::{Heatmap, HEATMAP_SLOTS};
use lbq_rtree::hilbert::{hilbert_key, tile_rect, KEY_ORDER};
use lbq_voronoi::{Delaunay, OrderKScratch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Hilbert prefix bits of one heatmap/hot tile (4096 tiles = order-6).
const TILE_BITS: u32 = HEATMAP_SLOTS.trailing_zeros();

/// Promotion/demotion policy for the hot-tile index.
///
/// `promote_after == 0` disables the tier entirely: the engine builds
/// no index and the serve path carries zero hot-tier work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotConfig {
    /// Traffic count at which a cold tile is promoted (0 = disabled).
    pub promote_after: u64,
    /// Decayed traffic below which a hot tile is demoted.
    pub demote_below: u64,
    /// Probe cadence of the decay sweep (counters halve every `n`
    /// hot-eligible queries).
    pub decay_every: u64,
    /// Cap on concurrently promoted tiles.
    pub max_tiles: usize,
    /// Cap on memoized cells per tile.
    pub max_cells_per_tile: usize,
    /// Fetch-rect margin, as a fraction of the tile's larger extent:
    /// sites are fetched from the tile footprint expanded by this much
    /// on every side, so k-sets near the tile interior resolve locally.
    pub margin: f64,
}

impl Default for HotConfig {
    fn default() -> Self {
        HotConfig {
            promote_after: 64,
            demote_below: 8,
            decay_every: 16 * 1024,
            max_tiles: 64,
            max_cells_per_tile: 4096,
            margin: 0.5,
        }
    }
}

impl HotConfig {
    /// A configuration with the hot tier turned off.
    pub fn disabled() -> Self {
        HotConfig {
            promote_after: 0,
            ..HotConfig::default()
        }
    }

    /// `true` when the tier participates in serving.
    pub fn is_enabled(&self) -> bool {
        self.promote_after > 0
    }
}

/// Point-in-time statistics of the hot tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotStats {
    /// Currently promoted tiles.
    pub hot_tiles: usize,
    /// Queries answered from a memoized cell.
    pub hits: u64,
    /// Lookups into a promoted tile that fell through to the pipeline.
    pub misses: u64,
    /// Lifetime promotions.
    pub promotions: u64,
    /// Lifetime demotions.
    pub demotions: u64,
    /// Currently memoized cells across all hot tiles.
    pub cells: u64,
}

/// Per-worker scratch for hot-tier lookups: the order-k walk state
/// plus the site-index and key buffers. Owned by the pool worker next
/// to its `QueryScratch`, so steady-state lookups are allocation-free.
#[derive(Debug, Default)]
pub(crate) struct HotScratch {
    order_k: OrderKScratch,
    sites: Vec<usize>,
    key: Vec<u64>,
}

/// Tile promotion state. `Building` parks concurrent lookups on the
/// cold path (no blocking on the builder) until the triangulation is
/// published.
enum TileState {
    Cold,
    Building,
    Hot(Arc<HotTile>),
}

/// One promoted tile: the tile-local site view and its memoized cells.
pub(crate) struct HotTile {
    /// Margin-expanded tile footprint the sites were fetched from
    /// (the key-prefix preimage of the tile, padded, clamped to the
    /// universe).
    fetch: Rect,
    /// Which fetch edges are clamped at the universe boundary — no
    /// sites exist beyond those, so they don't bound local soundness.
    open_edge: [bool; 4],
    /// Distinct site positions (index-aligned with `delaunay` sites).
    positions: Vec<Point>,
    /// Item ids at each position (duplicate items share a position).
    ids_at: Vec<Vec<u64>>,
    /// Tile-local triangulation for point location.
    delaunay: Delaunay,
    /// Memoized cells: `[k, sorted result ids…]` → the first on-line
    /// answer with that identity.
    cells: RwLock<HashMap<Box<[u64]>, Arc<QueryAnswer>>>,
}

impl HotTile {
    /// Builds the tile-local view by fetching every site in the
    /// expanded footprint from the server's tree.
    ///
    /// Reached from the per-query `probe`, but runs once per
    /// promotion (amortized across `promote_after` probes and
    /// executed outside the slot lock), so it is free to allocate.
    // lbq-check: cold — one-time tile materialization, not per-query work.
    fn build(server: &LbqServer, universe: &Rect, tile: u32, margin: f64) -> HotTile {
        let core = tile_rect(universe, tile, TILE_BITS);
        let pad = margin * core.width().max(core.height());
        let fetch = Rect::new(
            (core.xmin - pad).max(universe.xmin),
            (core.ymin - pad).max(universe.ymin),
            (core.xmax + pad).min(universe.xmax),
            (core.ymax + pad).min(universe.ymax),
        );
        let eps = lbq_geom::EPS * universe.width().max(universe.height()).max(1.0);
        let open_edge = [
            fetch.xmin <= universe.xmin + eps,
            fetch.ymin <= universe.ymin + eps,
            fetch.xmax >= universe.xmax - eps,
            fetch.ymax >= universe.ymax - eps,
        ];
        let items = server.tree().window(&fetch);
        let mut positions: Vec<Point> = Vec::new();
        let mut ids_at: Vec<Vec<u64>> = Vec::new();
        let mut index: HashMap<(u64, u64), usize> = HashMap::new();
        for it in items {
            let pk = (it.point.x.to_bits(), it.point.y.to_bits());
            let slot = *index.entry(pk).or_insert_with(|| {
                positions.push(it.point);
                ids_at.push(Vec::new());
                positions.len() - 1
            });
            ids_at[slot].push(it.id);
        }
        let delaunay = Delaunay::build(&positions, fetch);
        HotTile {
            fetch,
            open_edge,
            positions,
            ids_at,
            delaunay,
            cells: RwLock::new(HashMap::new()),
        }
    }

    /// Distance from `q` to the nearest *closed* fetch edge — the
    /// radius inside which the tile-local site view is provably
    /// complete. Universe-clamped edges are open (nothing beyond).
    fn sound_radius(&self, q: Point) -> f64 {
        let mut r = f64::INFINITY;
        if !self.open_edge[0] {
            r = r.min(q.x - self.fetch.xmin);
        }
        if !self.open_edge[1] {
            r = r.min(q.y - self.fetch.ymin);
        }
        if !self.open_edge[2] {
            r = r.min(self.fetch.xmax - q.x);
        }
        if !self.open_edge[3] {
            r = r.min(self.fetch.ymax - q.y);
        }
        r
    }

    /// Attempts to answer `knn(q, k)` from a memoized cell.
    ///
    /// Builds the candidate identity (the local k-set), then serves the
    /// stored answer only when its validity region contains `q` — the
    /// load-bearing guard. Every early `None` is a graceful degradation
    /// to the on-line pipeline, not an error.
    // lbq-check: hot — the per-query hot-tier probe; must not allocate at steady state.
    pub(crate) fn lookup(
        &self,
        q: Point,
        k: usize,
        scratch: &mut HotScratch,
    ) -> Option<Arc<QueryAnswer>> {
        if k == 0 || self.positions.is_empty() {
            return None;
        }
        // Local k-set: ask for k+1 positions so the rank-k/k+1
        // separation is checkable.
        self.delaunay
            .k_nearest_sites_in(q, k + 1, &mut scratch.order_k, &mut scratch.sites);
        scratch.key.clear();
        scratch.key.push(k as u64);
        let mut last_d = 0.0_f64;
        let mut taken = 0usize;
        let mut rank = 0usize;
        while taken < k {
            let &s = scratch.sites.get(rank)?;
            let ids = &self.ids_at[s];
            // A duplicate group straddling the k-cut makes the true
            // set depend on tree tie-breaks — degrade.
            if taken + ids.len() > k {
                return None;
            }
            scratch.key.extend_from_slice(ids);
            taken += ids.len();
            last_d = q.dist(self.positions[s]);
            rank += 1;
        }
        if let Some(&next) = scratch.sites.get(rank) {
            // Tie at the k-th distance: ambiguous identity — degrade.
            if q.dist(self.positions[next]) <= last_d {
                return None;
            }
        }
        // Soundness: no unfetched site may be closer than the k-th.
        if last_d >= self.sound_radius(q) {
            return None;
        }
        scratch.key[1..].sort_unstable();
        let cells = self.cells.read().unwrap_or_else(|e| e.into_inner());
        let answer = cells.get(&scratch.key[..])?;
        // The decisive guard: the stored region provably contains `q`,
        // so the stored result set *is* the answer at `q`.
        if answer.valid_at(q) {
            return Some(Arc::clone(answer));
        }
        None
    }

    /// Memoizes a fresh on-line answer under its order-k identity.
    /// Capped; first writer wins (identical identity ⇒ identical
    /// result set, and the anchored-answer semantics keep whichever
    /// anchor arrived first, exactly like the region cache).
    fn memoize(&self, k: usize, answer: &Arc<QueryAnswer>, cap: usize, cells_total: &AtomicU64) {
        let ids = answer.result_ids();
        if ids.len() != k {
            return;
        }
        let mut key = Vec::with_capacity(k + 1);
        key.push(k as u64);
        key.extend_from_slice(&ids);
        let mut cells = self.cells.write().unwrap_or_else(|e| e.into_inner());
        if cells.len() >= cap {
            return;
        }
        if !cells.contains_key(&key[..]) {
            cells.insert(key.into_boxed_slice(), Arc::clone(answer));
            cells_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[cfg(test)]
    pub(crate) fn cell_count(&self) -> usize {
        self.cells.read().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// The engine-wide hot-tile index: per-tile traffic counters (always
/// on — the heatmap is recording-gated, promotion must not be), the
/// promotion state machine, and the decay sweep.
pub(crate) struct HotIndex {
    config: HotConfig,
    universe: Rect,
    traffic: Vec<AtomicU64>,
    states: Vec<Mutex<TileState>>,
    promoted: AtomicUsize,
    probes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    cells: AtomicU64,
}

impl HotIndex {
    pub(crate) fn new(mut config: HotConfig, universe: Rect) -> HotIndex {
        config.decay_every = config.decay_every.max(1);
        HotIndex {
            config,
            universe,
            traffic: (0..HEATMAP_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            states: (0..HEATMAP_SLOTS)
                .map(|_| Mutex::new(TileState::Cold))
                .collect(),
            promoted: AtomicUsize::new(0),
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            cells: AtomicU64::new(0),
        }
    }

    /// The hot tile id of a query focus.
    pub(crate) fn tile_of(&self, focus: Point) -> u32 {
        Heatmap::tile_of_key(hilbert_key(focus, &self.universe), 2 * KEY_ORDER)
    }

    /// Notes one kNN probe into `tile` and returns its hot view, if
    /// any. Crossing the promotion threshold builds the tile **on this
    /// thread** (the crossing query pays the build, then uses it);
    /// concurrent probes of a building tile stay on the cold path.
    // lbq-check: hot — per-query tier dispatch; constant-time outside promotion events.
    pub(crate) fn probe(&self, tile: u32, server: &LbqServer) -> Option<Arc<HotTile>> {
        let slot = tile as usize & (HEATMAP_SLOTS - 1);
        let count = self.traffic[slot].fetch_add(1, Ordering::Relaxed) + 1;
        let probes = self.probes.fetch_add(1, Ordering::Relaxed) + 1;
        if probes % self.config.decay_every == 0 {
            self.decay_sweep();
        }
        {
            let mut state = self.states[slot].lock().unwrap_or_else(|e| e.into_inner());
            match &*state {
                TileState::Hot(t) => return Some(Arc::clone(t)),
                TileState::Building => return None,
                TileState::Cold => {
                    if count < self.config.promote_after
                        || self.promoted.load(Ordering::Relaxed) >= self.config.max_tiles
                    {
                        return None;
                    }
                    *state = TileState::Building;
                }
            }
        }
        // Build outside the state lock so concurrent lookups never
        // block on the builder. One allocation per *promotion*, not
        // per probe — amortized across `promote_after` queries.
        // lbq-check: allow(hot-alloc) — once per promotion event, outside the steady state
        let built = Arc::new(HotTile::build(
            server,
            &self.universe,
            tile,
            self.config.margin,
        ));
        let mut state = self.states[slot].lock().unwrap_or_else(|e| e.into_inner());
        *state = TileState::Hot(Arc::clone(&built));
        self.promoted.fetch_add(1, Ordering::Relaxed);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        Some(built)
    }

    /// Halves every traffic counter and demotes hot tiles that fell
    /// below the floor. Runs inline on the probing worker at a fixed
    /// cadence; a demoted tile's in-flight `Arc`s stay valid.
    fn decay_sweep(&self) {
        for slot in 0..HEATMAP_SLOTS {
            let halved = self.traffic[slot].load(Ordering::Relaxed) / 2;
            self.traffic[slot].store(halved, Ordering::Relaxed);
            if halved < self.config.demote_below {
                let mut state = self.states[slot].lock().unwrap_or_else(|e| e.into_inner());
                if let TileState::Hot(t) = &*state {
                    let dropped =
                        u64::try_from(t.cells.read().unwrap_or_else(|e| e.into_inner()).len())
                            .unwrap_or(0);
                    self.cells.fetch_sub(dropped, Ordering::Relaxed);
                    *state = TileState::Cold;
                    self.promoted.fetch_sub(1, Ordering::Relaxed);
                    self.demotions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Memoizes `answer` into `tile`'s cell store.
    pub(crate) fn memoize(&self, tile: &HotTile, k: usize, answer: &Arc<QueryAnswer>) {
        tile.memoize(k, answer, self.config.max_cells_per_tile, &self.cells);
    }

    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> HotStats {
        HotStats {
            hot_tiles: self.promoted.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for HotIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("HotIndex")
            .field("config", &self.config)
            .field("stats", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{answer_on, QueryReq};
    use lbq_rtree::{Item, RTree, RTreeConfig};

    fn server(n: usize) -> Arc<LbqServer> {
        let universe = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            // lbq-check: allow(lossy-cast) -- test-only uniform sample
            (rng >> 11) as f64 / (1u64 << 53) as f64
        };
        let items: Vec<Item> = (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect();
        Arc::new(LbqServer::new(
            RTree::bulk_load(items, RTreeConfig::default()),
            universe,
        ))
    }

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(!HotConfig::disabled().is_enabled());
        assert!(HotConfig::default().is_enabled());
    }

    #[test]
    fn promotion_after_threshold_and_memoized_hit() {
        let server = server(4000);
        // A generous fetch margin keeps the k-set and its soundness
        // radius well inside the tile-local view at this density.
        let config = HotConfig {
            promote_after: 4,
            margin: 2.0,
            ..HotConfig::default()
        };
        let index = HotIndex::new(config, server.universe());
        let q = Point::new(0.431, 0.517);
        let tile = index.tile_of(q);
        let mut scratch = HotScratch::default();
        let mut hot = None;
        for _ in 0..8 {
            hot = index.probe(tile, &server);
        }
        let hot = hot.expect("tile promoted after threshold");
        assert_eq!(index.stats().promotions, 1);
        // Cold lookup misses, the on-line answer memoizes, the repeat
        // lookup hits with the identical Arc.
        assert!(hot.lookup(q, 3, &mut scratch).is_none());
        let answer = Arc::new(answer_on(&server, &QueryReq::knn(q, 3)));
        index.memoize(&hot, 3, &answer);
        assert_eq!(hot.cell_count(), 1);
        let hit = hot.lookup(q, 3, &mut scratch).expect("memoized cell hit");
        assert!(Arc::ptr_eq(&hit, &answer));
        // A nearby query inside the same cell shares the anchor.
        let q2 = Point::new(q.x + 1e-6, q.y);
        if answer.valid_at(q2) {
            let hit2 = hot.lookup(q2, 3, &mut scratch).expect("same-cell hit");
            assert!(Arc::ptr_eq(&hit2, &answer));
        }
    }

    #[test]
    fn lookup_degrades_near_fetch_boundary() {
        let server = server(4000);
        let config = HotConfig {
            promote_after: 1,
            margin: 0.1,
            ..HotConfig::default()
        };
        let index = HotIndex::new(config, server.universe());
        let q = Point::new(0.5, 0.5);
        let tile = index.tile_of(q);
        let hot = index.probe(tile, &server).expect("promoted on first probe");
        let mut scratch = HotScratch::default();
        // A huge k cannot resolve inside the tiny fetch rect: the
        // soundness radius gate must degrade, never serve.
        let answer = Arc::new(answer_on(&server, &QueryReq::knn(q, 512)));
        index.memoize(&hot, 512, &answer);
        assert!(hot.lookup(q, 512, &mut scratch).is_none());
    }

    #[test]
    fn decay_demotes_idle_tiles() {
        let server = server(1000);
        let config = HotConfig {
            promote_after: 2,
            demote_below: 64,
            decay_every: 32,
            ..HotConfig::default()
        };
        let index = HotIndex::new(config, server.universe());
        let q = Point::new(0.25, 0.75);
        let tile = index.tile_of(q);
        for _ in 0..4 {
            index.probe(tile, &server);
        }
        assert_eq!(index.stats().hot_tiles, 1);
        // Drive the decay cadence from a *different* tile: the idle
        // hot tile halves below the floor and demotes.
        let other = index.tile_of(Point::new(0.9, 0.1));
        assert_ne!(tile, other);
        for _ in 0..256 {
            index.probe(other, &server);
        }
        let stats = index.stats();
        assert!(stats.demotions >= 1, "idle tile must demote: {stats:?}");
    }

    #[test]
    fn max_tiles_caps_promotions() {
        let server = server(2000);
        let config = HotConfig {
            promote_after: 1,
            max_tiles: 2,
            ..HotConfig::default()
        };
        let index = HotIndex::new(config, server.universe());
        for i in 0..16 {
            // lbq-check: allow(lossy-cast) -- small loop index
            let f = i as f64 / 16.0;
            let tile = index.tile_of(Point::new(f, f));
            index.probe(tile, &server);
        }
        assert!(index.stats().hot_tiles <= 2);
    }
}
