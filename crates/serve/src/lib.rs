//! # lbq-serve — the concurrent batched query engine
//!
//! The paper's motivation (its Section 1) is *server load*: millions of
//! moving clients re-issuing spatial queries saturate the server, and
//! validity regions exist to absorb those repeats on the client. This
//! crate closes the loop on the server side. It turns the
//! single-threaded [`LbqServer`] into a shared, concurrent service:
//!
//! * an immutable [`Arc<LbqServer>`] (the R\*-tree is `Sync`; all query
//!   paths take `&self`) shared across a hand-rolled, zero-dependency
//!   worker thread pool ([`EngineConfig::workers`] threads);
//! * a **batch API** — [`Engine::submit`] takes a `Vec<QueryReq>` of
//!   kNN-with-validity and window-with-validity requests and returns
//!   the matching `Vec<QueryResp>`, fanning the batch out across the
//!   workers (the batching regime argued for by the BRkNN-style batch
//!   NN processing work in PAPERS.md); `submit` orders the batch along
//!   the Hilbert curve of the query foci and dispatches **locality
//!   tiles** of [`EngineConfig::tile_size`] adjacent queries as single
//!   jobs, whose cache-miss kNN members are answered through the
//!   tree's shared-frontier group traversal — responses stay
//!   byte-identical to untiled dispatch, in submission order;
//! * a **sharded LRU validity-region cache** ([`RegionCache`]) in front
//!   of the tree: an incoming query whose focus falls inside a cached
//!   response's validity region (the point-in-region tests of the
//!   paper's Lemmas 3.1–3.2 for kNN, Section 4 for windows) is answered
//!   without touching the tree — the paper's client-side caching,
//!   mirrored server-side so *different* clients share regions too.
//!
//! ## Observability
//!
//! Every batch opens a `serve-batch` span; per-query spans are the
//! existing rtree/core ones. Global metrics: `serve-cache-hit` /
//! `serve-cache-miss` counters, a `serve-queue-depth` gauge, and a
//! `serve-query-latency` histogram. Per-worker latency histograms are
//! kept engine-local and rendered by [`Engine::profile_table`].
//!
//! With recording armed ([`lbq_obs::init_recorder`], or
//! `LBQ_OBS_SNAPSHOT` via [`lbq_obs::install_exporter_from_env`]), the
//! engine additionally threads a [`QueryResp::query_id`] through the
//! submit → Hilbert-tile → group-kNN/cache → tree pipeline and
//! attributes every response's latency to pipeline stages
//! ([`QueryResp::stages`]); each answered query feeds the
//! `serve-tile-heat` hot-tile heatmap and the flight recorder
//! (slow-query capture included). Answers are bit-identical with
//! recording on or off — the instrumentation only observes.
//!
//! # Example
//!
//! ```
//! use lbq_core::LbqServer;
//! use lbq_geom::{Point, Rect};
//! use lbq_rtree::{Item, RTree, RTreeConfig};
//! use lbq_serve::{Engine, EngineConfig, QueryReq, QueryAnswer};
//! use std::sync::Arc;
//!
//! let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
//! let items: Vec<Item> = (0..100)
//!     .map(|i| Item::new(Point::new((i % 10) as f64, (i / 10) as f64), i))
//!     .collect();
//! let server = Arc::new(LbqServer::new(
//!     RTree::bulk_load(items, RTreeConfig::tiny()),
//!     universe,
//! ));
//! let engine = Engine::new(server, EngineConfig::default());
//!
//! let resps = engine.submit(vec![
//!     QueryReq::knn(Point::new(4.2, 5.1), 3),
//!     QueryReq::window(Point::new(5.0, 5.0), 1.5, 1.5),
//! ]);
//! assert_eq!(resps.len(), 2);
//! match &*resps[0].answer {
//!     QueryAnswer::Knn(nn) => assert_eq!(nn.result.len(), 3),
//!     _ => unreachable!(),
//! }
//! ```

mod cache;
mod engine;
mod hot;
mod pool;

pub use cache::{CacheConfig, CacheStats, RegionCache};
pub use engine::{Engine, EngineConfig, WorkerSummary};
pub use hot::{HotConfig, HotStats};
pub use lbq_obs::CacheTier;

use lbq_core::{LbqServer, NnResponse, WindowResponse};
use lbq_geom::Point;
use lbq_rtree::QueryScratch;
use std::sync::Arc;

/// One location-based query request, as shipped by a mobile client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryReq {
    /// k nearest neighbors of `q` with a validity region (paper §3).
    Knn {
        /// Query focus (the client's position).
        q: Point,
        /// Number of neighbors.
        k: usize,
    },
    /// Window of half-extents `(hx, hy)` centered on the client at `c`,
    /// with a validity region (paper §4).
    Window {
        /// Window center (the client's position).
        c: Point,
        /// Half-width (must be positive).
        hx: f64,
        /// Half-height (must be positive).
        hy: f64,
    },
}

impl QueryReq {
    /// Shorthand for a kNN request.
    pub fn knn(q: Point, k: usize) -> Self {
        QueryReq::Knn { q, k }
    }

    /// Shorthand for a window request.
    pub fn window(c: Point, hx: f64, hy: f64) -> Self {
        QueryReq::Window { c, hx, hy }
    }

    /// The query focus — the client position the request is anchored
    /// at. Used for cache sharding and validity containment.
    pub fn focus(&self) -> Point {
        match *self {
            QueryReq::Knn { q, .. } => q,
            QueryReq::Window { c, .. } => c,
        }
    }
}

/// A served answer: the full validity-region response of the matching
/// query kind.
///
/// Cache hits return the response **anchored at the original query**
/// whose region the focus fell into: the result set is provably
/// identical (that is what a validity region means), but `query` /
/// `window` fields and kNN result *ordering* reflect the anchor focus,
/// exactly as they would on a client re-using its own cached response.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// Answer to a [`QueryReq::Knn`].
    Knn(NnResponse),
    /// Answer to a [`QueryReq::Window`].
    Window(WindowResponse),
}

impl QueryAnswer {
    /// The ids of the result set, sorted — the kind-independent payload
    /// used by tests and cache-equivalence checks.
    pub fn result_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = match self {
            QueryAnswer::Knn(r) => r.result.iter().map(|i| i.id).collect(),
            QueryAnswer::Window(r) => r.result.iter().map(|i| i.id).collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// `true` when the validity region of this answer contains `p`.
    pub fn valid_at(&self, p: Point) -> bool {
        match self {
            QueryAnswer::Knn(r) => r.validity.contains(p),
            QueryAnswer::Window(r) => r.validity.contains(p),
        }
    }

    /// A bounding rectangle of the validity region (`None` when the
    /// region polygon is empty). Conservative: containment must still
    /// be tested with [`QueryAnswer::valid_at`]; the cache uses this
    /// only to decide which shards an entry belongs to.
    pub fn region_bbox(&self) -> Option<lbq_geom::Rect> {
        match self {
            QueryAnswer::Knn(r) => {
                if r.validity.pairs.is_empty() {
                    // Empty influence set: valid across the universe.
                    Some(r.validity.universe)
                } else {
                    r.validity.polygon.bounding_rect()
                }
            }
            QueryAnswer::Window(r) => Some(r.validity.inner_rect),
        }
    }
}

/// One served response: the answer plus serving metadata.
#[derive(Debug, Clone)]
pub struct QueryResp {
    /// The answer (shared with the cache — cloning a response is an
    /// `Arc` bump, not a region copy).
    pub answer: Arc<QueryAnswer>,
    /// `true` when the answer came from the validity-region cache
    /// without touching the tree. Kept for compatibility — always
    /// equal to `tier == CacheTier::Cache`.
    pub from_cache: bool,
    /// Which tier produced the answer: full tree traversal (solo or
    /// group-amortized), the validity-region cache, or the hot-tile
    /// Voronoi fast path ([`HotConfig`]).
    pub tier: CacheTier,
    /// Index of the worker that served the request.
    pub worker: usize,
    /// Wall-clock service time of this request, nanoseconds (cache
    /// probe included).
    pub latency_ns: u64,
    /// Engine-assigned query id: unique per [`Engine`] instance,
    /// assigned at `submit` in request order — stable across tiling,
    /// worker scheduling, and recording on/off.
    pub query_id: u64,
    /// Per-stage breakdown of where this query's time went (cache
    /// lookup, tree/group kNN, TPNN chain, clip, window pass). All
    /// zeros unless recording is on ([`lbq_obs::init_recorder`]).
    /// Stage sums can differ slightly from `latency_ns`: the cache
    /// probe of a deferred kNN miss is attributed here but precedes
    /// the latency window, and group-shared stages are amortized the
    /// same way `latency_ns` is.
    pub stages: lbq_obs::StageNanos,
}

/// Evaluates `req` directly against `server`, bypassing pool and cache.
/// The sequential baseline the stress tests compare the engine against.
/// Allocates a fresh [`QueryScratch`] per call; the engine's miss path
/// uses [`answer_on_with`] with the worker's thread-owned scratch
/// instead.
pub fn answer_on(server: &LbqServer, req: &QueryReq) -> QueryAnswer {
    let mut scratch = QueryScratch::new();
    answer_on_with(server, req, &mut scratch)
}

/// [`answer_on`] against a reusable [`QueryScratch`]: the engine's miss
/// path. Every query type — the kNN plus its whole TPNN influence-set
/// chain, or both window passes — runs on the caller's buffers, so a
/// worker thread reusing one scratch serves steady-state misses without
/// allocating query state.
pub fn answer_on_with(
    server: &LbqServer,
    req: &QueryReq,
    scratch: &mut QueryScratch,
) -> QueryAnswer {
    match *req {
        QueryReq::Knn { q, k } => QueryAnswer::Knn(server.knn_with_validity_in(q, k, scratch)),
        QueryReq::Window { c, hx, hy } => {
            QueryAnswer::Window(server.window_with_validity_in(c, hx, hy, scratch))
        }
    }
}
