//! A hand-rolled, zero-dependency worker thread pool.
//!
//! `std`-only by workspace constraint: a `Mutex<VecDeque<Job>>` shared
//! injector, a `Condvar` for sleeping workers, and an atomic shutdown
//! latch. Each job receives the index of the worker that runs it (the
//! engine uses it for per-worker accounting) plus a mutable borrow of
//! that worker's thread-owned [`QueryScratch`], so query buffers are
//! allocated once per thread and reused across every job the worker
//! ever runs. Dropping the pool drains nothing: outstanding jobs are
//! completed before workers exit, so a submitted batch is never
//! abandoned.
//!
//! The queue depth is mirrored to the global `serve-queue-depth` gauge
//! on every push/pop, making backlog visible in metrics snapshots.

use crate::hot::HotScratch;
use lbq_rtree::QueryScratch;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

pub(crate) type Job = Box<dyn FnOnce(usize, &mut QueryScratch, &mut HotScratch) + Send + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    shutdown: AtomicBool,
    depth: lbq_obs::Gauge,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The worker pool: `workers()` threads pulling jobs off one injector.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

// Compile-time proof that the pool (and the injector state the workers
// share) crosses thread boundaries: the engine is held behind an `Arc`
// by callers that submit from multiple threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pool>();
    assert_send_sync::<Shared>();
};

impl Pool {
    /// Spawns `workers` threads (clamped to ≥ 1).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth: lbq_obs::gauge("serve-queue-depth"),
        });
        let handles = (0..workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lbq-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    // Spawn failure at construction is unrecoverable
                    // resource exhaustion.
                    // lbq-check: allow(no-unwrap-core) — construction-time resource exhaustion; no query in flight
                    .expect("spawning lbq-serve worker thread")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a batch of jobs and wakes the workers.
    pub(crate) fn push_all(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut q = self.shared.lock();
        q.jobs.extend(jobs);
        // lbq-check: allow(lossy-cast) — queue depth is far below i64::MAX
        self.shared.depth.set(q.jobs.len() as i64);
        drop(q);
        self.shared.available.notify_all();
    }
}

// lbq-check: hot — steady-state serve loop; scratch-backed queries must stay allocation-free
// lbq-check: no-panic — an unwinding worker strands its batch countdown and poisons the job queue
fn worker_loop(shared: &Shared, worker: usize) {
    // One scratch per worker thread, alive for the pool's lifetime:
    // after the first few jobs warm its buffers, steady-state queries
    // run allocation-free.
    let mut scratch = QueryScratch::new();
    let mut hot_scratch = HotScratch::default();
    loop {
        let job = {
            let mut q = shared.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    // lbq-check: allow(lossy-cast) — see push_all
                    shared.depth.set(q.jobs.len() as i64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => job(worker, &mut scratch, &mut hot_scratch),
            None => return,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked already poisoned nothing (the
            // queue lock is poison-proof); ignore its join error.
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = Pool::new(3);
        assert_eq!(pool.workers(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let jobs: Vec<Job> = (1..=100u64)
            .map(|i| {
                let sum = Arc::clone(&sum);
                let done = Arc::clone(&done);
                Box::new(
                    move |_w: usize, _s: &mut QueryScratch, _h: &mut HotScratch| {
                        sum.fetch_add(i, Ordering::Relaxed);
                        let (m, cv) = &*done;
                        *m.lock().unwrap() += 1;
                        cv.notify_all();
                    },
                ) as Job
            })
            .collect();
        pool.push_all(jobs);
        let (m, cv) = &*done;
        let mut g = m.lock().unwrap();
        while *g < 100 {
            g = cv.wait(g).unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn drop_completes_outstanding_jobs() {
        let ran = Arc::new(AtomicU64::new(0));
        {
            let pool = Pool::new(1);
            let jobs: Vec<Job> = (0..50)
                .map(|_| {
                    let ran = Arc::clone(&ran);
                    Box::new(
                        move |_w: usize, _s: &mut QueryScratch, _h: &mut HotScratch| {
                            ran.fetch_add(1, Ordering::Relaxed);
                        },
                    ) as Job
                })
                .collect();
            pool.push_all(jobs);
        } // drop joins
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }
}
