//! Concurrency stress tests: the parallel engine must be
//! indistinguishable from the sequential server, byte for byte, and
//! the validity-region cache must be exactly as correct as the regions
//! it stores.
//!
//! No `loom` (the workspace is std-only): instead, determinism is
//! exploited — every query path is a pure function of the immutable
//! tree, so a parallel run can be compared against the sequential
//! baseline via the full `Debug` rendering of each response (floats
//! included). Any torn read, lost write, or cross-thread interference
//! would show up as a mismatch.

use lbq_core::LbqServer;
use lbq_data::uniform;
use lbq_geom::{Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, Engine, EngineConfig, QueryReq};
use std::sync::Arc;

fn build_server(n: usize, seed: u64) -> Arc<LbqServer> {
    let data = uniform(n, Rect::new(0.0, 0.0, 1.0, 1.0), seed);
    Arc::new(LbqServer::new(
        RTree::bulk_load(data.items, RTreeConfig::tiny()),
        data.universe,
    ))
}

/// A deterministic mixed workload: kNN (k 1–8) and window requests
/// scattered over the unit universe.
fn workload(count: usize, seed: u64) -> Vec<QueryReq> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            if rng.gen_bool(0.5) {
                QueryReq::knn(p, 1 + (rng.gen_range(0.0..8.0) as usize))
            } else {
                QueryReq::window(p, rng.gen_range(0.01..0.05), rng.gen_range(0.01..0.05))
            }
        })
        .collect()
}

#[test]
fn parallel_results_byte_identical_to_sequential() {
    let server = build_server(5_000, 7);
    let reqs = workload(400, 11);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", answer_on(&server, r)))
        .collect();
    for workers in [2, 4, 8] {
        let engine = Engine::new(
            Arc::clone(&server),
            EngineConfig {
                workers,
                cache: CacheConfig::disabled(),
                ..EngineConfig::default()
            },
        );
        let resps = engine.submit(reqs.clone());
        assert_eq!(resps.len(), baseline.len());
        for (i, (resp, expect)) in resps.iter().zip(&baseline).enumerate() {
            assert!(!resp.from_cache, "cache disabled");
            assert_eq!(
                format!("{:?}", resp.answer),
                *expect,
                "request {i} diverged under {workers} workers"
            );
        }
    }
}

#[test]
fn tiled_dispatch_byte_identical_to_untiled() {
    // The Hilbert tiling (and the shared-frontier group kNN inside it)
    // must be invisible in the output: same responses, same order, for
    // every tile size — including tiles that mix kNN ks and windows,
    // and duplicate foci that land in one tile.
    let server = build_server(4_000, 19);
    let mut reqs = workload(300, 29);
    reqs.extend_from_slice(&reqs.clone()[..50]); // duplicates
    let untiled = Engine::new(
        Arc::clone(&server),
        EngineConfig {
            workers: 3,
            cache: CacheConfig::disabled(),
            tile_size: 1,
            ..EngineConfig::default()
        },
    );
    let baseline: Vec<String> = untiled
        .submit(reqs.clone())
        .iter()
        .map(|r| format!("{:?}", r.answer))
        .collect();
    for tile_size in [2, 7, 32, 1024] {
        let tiled = Engine::new(
            Arc::clone(&server),
            EngineConfig {
                workers: 3,
                cache: CacheConfig::disabled(),
                tile_size,
                ..EngineConfig::default()
            },
        );
        let resps = tiled.submit(reqs.clone());
        assert_eq!(resps.len(), baseline.len());
        for (i, (resp, expect)) in resps.iter().zip(&baseline).enumerate() {
            assert_eq!(
                format!("{:?}", resp.answer),
                *expect,
                "request {i} diverged at tile size {tile_size}"
            );
        }
        let total: u64 = tiled.worker_summaries().iter().map(|s| s.jobs).sum();
        assert_eq!(
            total,
            reqs.len() as u64,
            "per-query accounting survives tiling"
        );
    }
}

#[test]
fn concurrent_submitters_each_get_exact_results() {
    let server = build_server(3_000, 23);
    let engine = Arc::new(Engine::new(
        Arc::clone(&server),
        EngineConfig {
            workers: 4,
            cache: CacheConfig::disabled(),
            ..EngineConfig::default()
        },
    ));
    // 4 submitter threads share the engine, each with its own batch;
    // batches interleave in the worker queue.
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let reqs = workload(150, 100 + t);
                let resps = engine.submit(reqs.clone());
                for (req, resp) in reqs.iter().zip(&resps) {
                    assert_eq!(
                        format!("{:?}", resp.answer),
                        format!("{:?}", answer_on(&server, req)),
                        "submitter {t} got a foreign or corrupted response"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread panicked");
    }
}

#[test]
fn cached_hit_returns_exact_cached_result_set() {
    let server = build_server(2_000, 31);
    let engine = Engine::new(Arc::clone(&server), EngineConfig::with_workers(2));

    let anchor = QueryReq::knn(Point::new(0.41, 0.63), 3);
    let first = engine.submit(vec![anchor]);
    assert!(!first[0].from_cache);
    let region_holds = |p: Point| first[0].answer.valid_at(p);

    // Pick a probe point strictly inside the anchor's validity region
    // by walking toward the anchor focus from a nearby offset.
    let mut probe = Point::new(0.41 + 3e-4, 0.63 - 2e-4);
    assert!(
        region_holds(probe) || {
            probe = anchor.focus();
            true
        }
    );
    let hit = engine.submit(vec![QueryReq::knn(probe, 3)]);
    assert!(hit[0].from_cache, "focus inside cached region must hit");
    // The exact cached result set (same Arc, even).
    assert!(Arc::ptr_eq(&hit[0].answer, &first[0].answer));
    assert_eq!(hit[0].answer.result_ids(), first[0].answer.result_ids());

    // A focus outside the region misses and recomputes.
    let outside = Point::new(0.91, 0.13);
    assert!(!region_holds(outside));
    let miss = engine.submit(vec![QueryReq::knn(outside, 3)]);
    assert!(!miss[0].from_cache, "focus outside cached region must miss");
    // And the recomputed answer matches the sequential server.
    assert_eq!(
        miss[0].answer.result_ids(),
        answer_on(&server, &QueryReq::knn(outside, 3)).result_ids()
    );
}

#[test]
fn cached_window_hit_is_exact() {
    let server = build_server(2_000, 37);
    let engine = Engine::new(Arc::clone(&server), EngineConfig::with_workers(2));
    let anchor = QueryReq::window(Point::new(0.5, 0.5), 0.06, 0.04);
    let first = engine.submit(vec![anchor]);
    assert!(!first[0].from_cache);

    // Inside the inner rectangle the result set cannot change.
    let nudged = QueryReq::window(anchor.focus(), 0.06, 0.04);
    let hit = engine.submit(vec![nudged]);
    assert!(hit[0].from_cache);
    assert_eq!(hit[0].answer.result_ids(), first[0].answer.result_ids());

    // Same focus, different window shape: a different query — miss.
    let other = engine.submit(vec![QueryReq::window(anchor.focus(), 0.05, 0.04)]);
    assert!(!other[0].from_cache);
}

#[test]
fn engine_under_cache_still_matches_sequential_result_sets() {
    // With the cache ON, responses may be anchored at an earlier
    // equivalent query — but the *result sets* must still be exactly
    // what the sequential server would return (that is Lemma 3.1/3.2
    // doing its job at serving time).
    let server = build_server(4_000, 43);
    let engine = Engine::new(Arc::clone(&server), EngineConfig::with_workers(4));
    // A workload with heavy focus reuse to actually exercise hits.
    let base = workload(120, 51);
    let mut reqs = Vec::new();
    let mut rng = Xoshiro256ss::seed_from_u64(99);
    for _ in 0..600 {
        reqs.push(base[rng.gen_range(0.0..base.len() as f64) as usize]);
    }
    let resps = engine.submit(reqs.clone());
    let mut hits = 0;
    for (req, resp) in reqs.iter().zip(&resps) {
        hits += usize::from(resp.from_cache);
        assert_eq!(
            resp.answer.result_ids(),
            answer_on(&server, req).result_ids(),
            "cache served a wrong result set"
        );
    }
    assert!(hits > 0, "repeated foci should produce cache hits");
    let stats = engine.cache().stats();
    assert_eq!(stats.hits as usize, hits);
}
