//! Recording-on integration: per-query stage attribution, flight
//! recorder, and heatmap, end to end through `Engine::submit` — and the
//! bit-identical guarantee that arming recording changes no answer.
//!
//! Lives in its own integration-test process because recording
//! ([`lbq_obs::set_recording`]) and the flight recorder are
//! process-global: unit tests inside the crates must not see the flag
//! flipped mid-run.

use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_obs::{QueryKind, RecorderConfig};
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_serve::{Engine, EngineConfig, QueryReq, QueryResp};
use std::sync::Arc;

fn grid_server(n_side: u64) -> Arc<LbqServer> {
    let universe = Rect::new(0.0, 0.0, n_side as f64, n_side as f64);
    let items: Vec<Item> = (0..n_side * n_side)
        .map(|i| Item::new(Point::new((i % n_side) as f64, (i / n_side) as f64), i))
        .collect();
    Arc::new(LbqServer::new(
        RTree::bulk_load(items, RTreeConfig::default()),
        universe,
    ))
}

fn workload(n: usize) -> Vec<QueryReq> {
    (0..n)
        .map(|i| match i % 3 {
            0 => QueryReq::knn(Point::new((i % 17) as f64 + 0.3, (i % 13) as f64 + 0.6), 4),
            1 => QueryReq::knn(Point::new((i % 11) as f64 + 0.1, (i % 19) as f64 + 0.2), 8),
            _ => QueryReq::window(
                Point::new((i % 15) as f64 + 0.5, (i % 9) as f64 + 0.5),
                1.25,
                0.75,
            ),
        })
        .collect()
}

fn ids_of(resps: &[QueryResp]) -> Vec<Vec<u64>> {
    resps.iter().map(|r| r.answer.result_ids()).collect()
}

#[test]
fn attribution_recorder_and_heatmap_end_to_end() {
    let server = grid_server(20);
    let reqs = workload(120);

    // Baseline pass with recording off: answers and zeroed stages.
    let off = Engine::new(Arc::clone(&server), EngineConfig::with_workers(3));
    let baseline = off.submit(reqs.clone());
    assert!(baseline.iter().all(|r| r.stages.is_zero()));

    // Arm recording (exporter not needed for this test).
    lbq_obs::init_recorder(RecorderConfig {
        capacity: 256,
        ..RecorderConfig::default()
    });
    assert!(lbq_obs::recording());

    let on = Engine::new(Arc::clone(&server), EngineConfig::with_workers(3));
    let recorded = on.submit(reqs.clone());

    // Bit-identical: recording only observes. (`from_cache` is NOT
    // compared — within a batch, whether a query hits an entry that a
    // concurrent tile just inserted depends on worker scheduling; the
    // validity-region lemma guarantees the result *sets* match either
    // way, and that is the bit-identical contract.)
    assert_eq!(ids_of(&baseline), ids_of(&recorded));

    // Ids are request-ordered; every miss carries non-zero attribution.
    let ids: Vec<u64> = recorded.iter().map(|r| r.query_id).collect();
    assert_eq!(ids, (0..reqs.len() as u64).collect::<Vec<u64>>());
    let misses: Vec<&QueryResp> = recorded.iter().filter(|r| !r.from_cache).collect();
    assert!(!misses.is_empty(), "fresh engine must miss");
    for r in &misses {
        assert!(
            !r.stages.is_zero(),
            "miss {} has all-zero stage attribution",
            r.query_id
        );
    }
    // kNN misses spend time in a tree stage; windows in the window pass.
    let knn_ns: u64 = misses
        .iter()
        .map(|r| r.stages.get(lbq_obs::Stage::TreeKnn) + r.stages.get(lbq_obs::Stage::GroupKnn))
        .sum();
    let window_ns: u64 = misses
        .iter()
        .map(|r| r.stages.get(lbq_obs::Stage::WindowPass))
        .sum();
    assert!(knn_ns > 0, "no time attributed to tree/group kNN");
    assert!(window_ns > 0, "no time attributed to the window pass");

    // A second identical batch is served from cache: its responses
    // attribute cache-lookup time and fresh ids.
    let cached = on.submit(reqs.clone());
    assert!(cached.iter().all(|r| r.from_cache));
    assert_eq!(
        cached[0].query_id,
        reqs.len() as u64,
        "ids continue across batches"
    );
    assert_eq!(ids_of(&cached), ids_of(&baseline));

    // The flight recorder saw every recorded query...
    let rec = lbq_obs::recorder().expect("recorder armed");
    let stats = rec.stats();
    assert_eq!(stats.total, 2 * reqs.len() as u64);
    // ...and its ring holds the most recent events, kinds intact.
    let recent = rec.recent();
    assert!(!recent.is_empty());
    assert!(recent
        .iter()
        .all(|(_, ev)| matches!(ev.kind, QueryKind::Knn | QueryKind::Window)));

    // Heatmap: the engine's tile counters saw exactly the same queries.
    let heat = lbq_obs::heatmap("serve-tile-heat");
    let tiles = heat.snapshot();
    assert!(!tiles.is_empty(), "heatmap empty after recorded batches");
    let hits: u64 = tiles.iter().map(|t| t.hits).sum();
    assert_eq!(hits, 2 * reqs.len() as u64);

    // Stage histograms aggregated across queries.
    let table = on.stage_table().render();
    assert!(table.contains("tree-knn") || table.contains("group-knn"));
}
