//! Hot-tile Voronoi tier equivalence: with the fast path armed, the
//! engine must be *observably identical* to the cold pipeline — same
//! result set for every query, hot or cold — while actually serving a
//! measurable share of a skewed stream from memoized cells.
//!
//! The hot tier memoizes anchored answers (like the region cache), so
//! kNN result *ordering* and the `query` focus may reflect the anchor
//! rather than the probe point. Equivalence is therefore checked on
//! the sorted result-id set — the paper's Lemma 3.1 guarantees it is
//! invariant across the validity region — plus `valid_at(q)`, which
//! the lookup is required to verify before serving.

use lbq_core::LbqServer;
use lbq_data::uniform;
use lbq_geom::{Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, CacheTier, Engine, EngineConfig, HotConfig, QueryReq};
use std::sync::Arc;

fn build_server(n: usize, seed: u64) -> Arc<LbqServer> {
    let data = uniform(n, Rect::new(0.0, 0.0, 1.0, 1.0), seed);
    Arc::new(LbqServer::new(
        RTree::bulk_load(data.items, RTreeConfig::tiny()),
        data.universe,
    ))
}

/// A hot-tile friendly config: promote after a handful of probes and
/// fetch a wide apron so tiles at this site density hold enough
/// neighbors for small-k lookups to pass the soundness gates.
fn eager_hot() -> HotConfig {
    HotConfig {
        promote_after: 8,
        margin: 2.0,
        ..HotConfig::default()
    }
}

/// A mixed stream: bursts hammering a few hotspot tiles (small k, the
/// hot tier's target) interleaved with uniform cold kNN and window
/// queries that must flow through the ordinary pipeline untouched.
fn mixed_stream(count: usize, seed: u64) -> Vec<QueryReq> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    let hotspots = [
        Point::new(0.31, 0.52),
        Point::new(0.72, 0.28),
        Point::new(0.55, 0.81),
    ];
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.7) {
                let c = hotspots[rng.gen_range(0.0..3.0) as usize];
                let p = Point::new(
                    c.x + (rng.gen_range(0.0..1.0) - 0.5) * 0.01,
                    c.y + (rng.gen_range(0.0..1.0) - 0.5) * 0.01,
                );
                QueryReq::knn(p, 1 + (rng.gen_range(0.0..3.0) as usize))
            } else {
                let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
                if rng.gen_bool(0.5) {
                    QueryReq::knn(p, 1 + (rng.gen_range(0.0..8.0) as usize))
                } else {
                    QueryReq::window(p, rng.gen_range(0.01..0.05), rng.gen_range(0.01..0.05))
                }
            }
        })
        .collect()
}

fn focus(req: &QueryReq) -> Point {
    match *req {
        QueryReq::Knn { q, .. } => q,
        QueryReq::Window { c, .. } => c,
    }
}

/// Every answer from a hot-enabled engine — whatever tier served it —
/// carries the same result-id set as the on-line construction, and its
/// validity region contains the probe point. The skewed stream must
/// actually exercise the fast path, or the test is vacuous.
#[test]
fn mixed_hot_cold_stream_matches_baseline() {
    let server = build_server(4_000, 3);
    let reqs = mixed_stream(2_000, 17);
    let baseline: Vec<Vec<u64>> = reqs
        .iter()
        .map(|r| answer_on(&server, r).result_ids())
        .collect();
    for workers in [1, 4] {
        let engine = Engine::new(
            Arc::clone(&server),
            EngineConfig {
                workers,
                cache: CacheConfig::disabled(),
                hot: eager_hot(),
                ..EngineConfig::default()
            },
        );
        let mut hot_served = 0u64;
        for (ci, chunk) in reqs.chunks(200).enumerate() {
            let offset = ci * 200;
            let resps = engine.submit(chunk.to_vec());
            for (i, resp) in resps.iter().enumerate() {
                let req = &reqs[offset + i];
                assert_eq!(
                    resp.answer.result_ids(),
                    baseline[offset + i],
                    "tier {:?} diverged from on-line construction for {req:?}",
                    resp.tier,
                );
                assert!(
                    resp.answer.valid_at(focus(req)),
                    "served answer's validity region excludes the probe point",
                );
                if resp.tier == CacheTier::HotVoronoi {
                    hot_served += 1;
                }
            }
        }
        let stats = engine.hot_stats();
        assert!(
            stats.promotions > 0 && stats.hits > 0 && hot_served > 0,
            "skewed stream never exercised the hot tier \
             (promotions {}, hits {}, hot responses {hot_served})",
            stats.promotions,
            stats.hits,
        );
        assert_eq!(stats.hits, hot_served, "stats disagree with response tiers");
    }
}

/// Promotion/demotion churn racing concurrent submits must be
/// invisible in the results: a config that demotes every tile at every
/// decay sweep (and instantly re-promotes it) changes *when* the fast
/// path answers, never *what* it answers.
#[test]
fn promotion_churn_under_concurrent_submits_never_changes_results() {
    let server = build_server(4_000, 5);
    let engine = Arc::new(Engine::new(
        Arc::clone(&server),
        EngineConfig {
            workers: 4,
            cache: CacheConfig::disabled(),
            hot: HotConfig {
                promote_after: 4,
                // Higher than any halved counter can sit: every decay
                // sweep demotes every promoted tile.
                demote_below: u64::MAX,
                decay_every: 64,
                margin: 2.0,
                ..HotConfig::default()
            },
            ..EngineConfig::default()
        },
    ));
    let threads = 4;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let reqs = mixed_stream(600, 100 + t);
                for chunk in reqs.chunks(50) {
                    let resps = engine.submit(chunk.to_vec());
                    for (req, resp) in chunk.iter().zip(&resps) {
                        assert_eq!(
                            resp.answer.result_ids(),
                            answer_on(&server, req).result_ids(),
                            "churn changed a result for {req:?}",
                        );
                        assert!(resp.answer.valid_at(focus(req)));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter panicked");
    }
    let stats = engine.hot_stats();
    assert!(
        stats.demotions > 0,
        "churn config produced no demotions (promotions {}) — test is vacuous",
        stats.promotions,
    );
    assert!(
        stats.promotions > stats.demotions || stats.promotions >= 2,
        "tiles never re-promoted after demotion",
    );
}

/// The default engine keeps the hot tier on; a `disabled()` config
/// must never probe, promote, or report hot-tier responses.
#[test]
fn disabled_hot_tier_is_inert() {
    let server = build_server(1_000, 9);
    let engine = Engine::new(
        Arc::clone(&server),
        EngineConfig {
            workers: 2,
            cache: CacheConfig::disabled(),
            hot: HotConfig::disabled(),
            ..EngineConfig::default()
        },
    );
    for chunk in mixed_stream(400, 23).chunks(100) {
        for resp in engine.submit(chunk.to_vec()) {
            assert_ne!(resp.tier, CacheTier::HotVoronoi);
        }
    }
    let stats = engine.hot_stats();
    assert_eq!((stats.promotions, stats.hits, stats.misses), (0, 0, 0));
    assert_eq!(stats.hot_tiles, 0);
}
