//! Loopback integration tests: real sockets against a real engine —
//! the byte-identical serving contract, cross-connection coalescing,
//! protocol-error teardown, forward compatibility, per-connection
//! limits, and graceful shutdown.

use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_net::{NetClient, NetConfig, NetServer};
use lbq_proto::{encode_query_response, ErrorCode, Frame};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, Engine, EngineConfig, QueryReq, QueryResp};
use std::sync::Arc;
use std::time::Duration;

const UNIVERSE: Rect = Rect {
    xmin: 0.0,
    ymin: 0.0,
    xmax: 100.0,
    ymax: 100.0,
};

fn make_server(n: usize, seed: u64) -> Arc<LbqServer> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_f64() * 100.0, rng.gen_f64() * 100.0),
                i as u64,
            )
        })
        .collect();
    Arc::new(LbqServer::new(
        RTree::bulk_load(items, RTreeConfig::default()),
        UNIVERSE,
    ))
}

/// Engine with the validity cache disabled: every response is a fresh
/// miss, so its answer is the pure function of the request that the
/// byte-identical assertions need (a cache or hot-tier hit would
/// anchor the answer at the *original* query's focus).
fn make_engine(server: &Arc<LbqServer>, workers: usize) -> Arc<Engine> {
    Arc::new(Engine::new(
        Arc::clone(server),
        EngineConfig {
            workers,
            cache: CacheConfig::disabled(),
            tile_size: 8,
            hot: lbq_serve::HotConfig::disabled(),
        },
    ))
}

fn rand_query(rng: &mut Xoshiro256ss) -> QueryReq {
    if rng.gen_bool(0.5) {
        QueryReq::knn(
            Point::new(rng.gen_f64() * 100.0, rng.gen_f64() * 100.0),
            1 + rng.gen_index(8),
        )
    } else {
        QueryReq::window(
            Point::new(rng.gen_f64() * 100.0, rng.gen_f64() * 100.0),
            0.5 + rng.gen_f64() * 5.0,
            0.5 + rng.gen_f64() * 5.0,
        )
    }
}

/// The in-process bytes the byte-identical contract promises for
/// `req`: the baseline answer, encoded exactly as the server encodes
/// it. `query_id` is engine-assigned (scheduling-dependent under
/// concurrency), so it is taken from the received frame; `worker` and
/// `latency_ns` are not on the wire at all; stages are zero because
/// recording is off.
fn expected_bytes(server: &LbqServer, req: &QueryReq, request_id: u64, query_id: u64) -> Vec<u8> {
    let resp = QueryResp {
        answer: Arc::new(answer_on(server, req)),
        from_cache: false,
        tier: lbq_serve::CacheTier::Tree,
        worker: usize::MAX,   // not on the wire
        latency_ns: u64::MAX, // not on the wire
        query_id,
        stages: Default::default(),
    };
    let mut out = Vec::new();
    encode_query_response(request_id, &resp, &mut out).expect("encode");
    out
}

fn frame_query_id(frame: &Frame) -> u64 {
    match frame {
        Frame::KnnResponse(r) => r.query_id,
        Frame::WindowResponse(r) => r.query_id,
        other => panic!("expected a response frame, got {other:?}"),
    }
}

#[test]
fn single_client_byte_identical_roundtrip() {
    let server = make_server(400, 11);
    let mut net = NetServer::bind("127.0.0.1:0", make_engine(&server, 2), NetConfig::default())
        .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    let mut rng = Xoshiro256ss::seed_from_u64(77);
    for request_id in 0..50u64 {
        let req = rand_query(&mut rng);
        client.send_query(request_id, &req).expect("send");
        let (frame, raw) = client.recv_raw().expect("recv");
        assert_eq!(frame.request_id(), request_id);
        let expected = expected_bytes(&server, &req, request_id, frame_query_id(&frame));
        assert_eq!(
            raw, expected,
            "socket bytes differ from in-process encoding"
        );
    }
    net.shutdown();
}

#[test]
fn multi_connection_pipelined_coalescing() {
    let server = make_server(600, 22);
    let cfg = NetConfig {
        coalesce_window: Duration::from_millis(2),
        ..NetConfig::default()
    };
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 4), cfg).expect("bind");
    let addr = net.local_addr();
    let server = Arc::new(server);
    let handles: Vec<_> = (0..8u64)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256ss::seed_from_u64(1000 + c);
                let mut client = NetClient::connect(addr).expect("connect");
                let reqs: Vec<(u64, QueryReq)> = (0..25u64)
                    .map(|i| (c << 32 | i, rand_query(&mut rng)))
                    .collect();
                // Pipeline everything, half-close, then read it all back.
                for (id, req) in &reqs {
                    client.send_query(*id, req).expect("send");
                }
                client.shutdown_write().expect("half-close");
                let mut seen = std::collections::HashMap::new();
                for _ in 0..reqs.len() {
                    let (frame, raw) = client.recv_raw().expect("recv");
                    seen.insert(frame.request_id(), (frame_query_id(&frame), raw));
                }
                // Responses may arrive in any order across batches; every
                // request is answered exactly once, byte-identically.
                assert_eq!(seen.len(), reqs.len());
                for (id, req) in &reqs {
                    let (qid, raw) = &seen[id];
                    assert_eq!(raw, &expected_bytes(&server, req, *id, *qid));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(net); // shutdown-on-drop with already-drained connections
}

#[test]
fn malformed_frame_answers_then_tears_down() {
    let server = make_server(100, 33);
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 1), NetConfig::default())
        .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    client
        .send_raw(b"XXXX\x01\x10\x00\x00\x1c\x00\x00\x00")
        .expect("send");
    let frame = client.recv().expect("error frame must arrive before FIN");
    let Frame::Error(e) = frame else {
        panic!("expected an error frame, got {frame:?}")
    };
    assert_eq!(e.code, ErrorCode::BadMagic as u32);
    // The connection is gone: the next read hits EOF.
    let err = client.recv().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn unknown_frame_type_is_survivable() {
    let server = make_server(100, 44);
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 1), NetConfig::default())
        .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    // An unknown-but-well-framed type 0x55 with request_id 9 and an
    // 8-byte payload: the server must skip it, answer with
    // UnknownFrameType, and keep serving.
    let mut raw = Vec::new();
    raw.extend_from_slice(b"LBQ1");
    raw.push(1); // version
    raw.push(0x55);
    raw.extend_from_slice(&[0, 0]);
    raw.extend_from_slice(&8u32.to_le_bytes());
    raw.extend_from_slice(&9u64.to_le_bytes());
    client.send_raw(&raw).expect("send");
    let Frame::Error(e) = client.recv().expect("recv") else {
        panic!("expected an error frame")
    };
    assert_eq!(e.code, ErrorCode::UnknownFrameType as u32);
    assert_eq!(e.request_id, 9, "the unknown frame's id is echoed");
    // Still alive:
    client
        .send_query(10, &QueryReq::knn(Point::new(50.0, 50.0), 2))
        .expect("send");
    let frame = client.recv().expect("recv");
    assert_eq!(frame.request_id(), 10);
    assert!(matches!(frame, Frame::KnnResponse(_)));
}

#[test]
fn invalid_request_is_recoverable() {
    let server = make_server(100, 55);
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 1), NetConfig::default())
        .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    // k = 0 is semantically invalid: rejected, connection survives.
    client
        .send_frame(&Frame::KnnRequest(lbq_proto::KnnRequest {
            request_id: 1,
            q: Point::new(1.0, 1.0),
            k: 0,
        }))
        .expect("send");
    let Frame::Error(e) = client.recv().expect("recv") else {
        panic!("expected an error frame")
    };
    assert_eq!(e.code, ErrorCode::InvalidRequest as u32);
    assert_eq!(e.request_id, 1);
    client
        .send_query(2, &QueryReq::window(Point::new(30.0, 30.0), 4.0, 4.0))
        .expect("send");
    assert_eq!(client.recv().expect("recv").request_id(), 2);
}

#[test]
fn inflight_budget_overflow_tears_down() {
    let server = make_server(100, 66);
    // A long window keeps requests in flight while the client floods.
    let cfg = NetConfig {
        coalesce_window: Duration::from_millis(500),
        max_inflight: 3,
        ..NetConfig::default()
    };
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 1), cfg).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    for id in 0..10u64 {
        if client
            .send_query(id, &QueryReq::knn(Point::new(5.0, 5.0), 1))
            .is_err()
        {
            break; // server already closed on us mid-flood — also fine
        }
    }
    // Somewhere in the stream of replies there must be the budget error.
    let mut saw_budget_error = false;
    loop {
        match client.recv() {
            Ok(Frame::Error(e)) => {
                assert_eq!(e.code, ErrorCode::TooManyInFlight as u32);
                saw_budget_error = true;
            }
            Ok(_) => {} // responses to the requests that fit the budget
            Err(_) => break,
        }
    }
    assert!(saw_budget_error, "expected a TooManyInFlight error frame");
}

#[test]
fn graceful_shutdown_answers_everything_accepted() {
    let server = make_server(300, 88);
    // A very long window: without the shutdown drain, responses would
    // take 10 s to arrive; the test passing quickly *is* the assertion
    // that shutdown flushes the session queue.
    let cfg = NetConfig {
        coalesce_window: Duration::from_secs(10),
        ..NetConfig::default()
    };
    let mut net = NetServer::bind("127.0.0.1:0", make_engine(&server, 2), cfg).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    let mut rng = Xoshiro256ss::seed_from_u64(99);
    let reqs: Vec<(u64, QueryReq)> = (0..20u64).map(|i| (i, rand_query(&mut rng))).collect();
    for (id, req) in &reqs {
        client.send_query(*id, req).expect("send");
    }
    // Give the reader thread a beat to decode and inject everything —
    // shutdown only guarantees *accepted* requests are answered.
    std::thread::sleep(Duration::from_millis(200));
    net.shutdown();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..reqs.len() {
        let frame = client.recv().expect("every accepted request is answered");
        assert!(!matches!(frame, Frame::Error(_)), "unexpected {frame:?}");
        seen.insert(frame.request_id());
    }
    assert_eq!(seen.len(), reqs.len());
    assert_eq!(
        client.recv().expect_err("then the server closes").kind(),
        std::io::ErrorKind::UnexpectedEof
    );
}

#[test]
fn clean_eof_lingers_for_inflight_responses() {
    let server = make_server(200, 111);
    let cfg = NetConfig {
        coalesce_window: Duration::from_millis(50),
        ..NetConfig::default()
    };
    let net = NetServer::bind("127.0.0.1:0", make_engine(&server, 1), cfg).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    for id in 0..5u64 {
        client
            .send_query(id, &QueryReq::knn(Point::new(10.0 + id as f64, 20.0), 3))
            .expect("send");
    }
    // Half-close immediately: the responses are still in the coalescing
    // window, and must all arrive anyway.
    client.shutdown_write().expect("half-close");
    let mut seen = std::collections::HashSet::new();
    for _ in 0..5 {
        seen.insert(client.recv().expect("recv").request_id());
    }
    assert_eq!(seen.len(), 5);
    drop(net);
}
