//! The session layer: a cross-connection request coalescer.
//!
//! Readers of *all* connections inject decoded requests into one
//! [`Injector`]; a single dispatcher thread drains it in **coalesced
//! batches** — requests arriving within [`crate::NetConfig::coalesce_window`]
//! of each other (from any connection) ride the same
//! [`lbq_serve::Engine::submit`] call, and therefore the same Hilbert
//! tiling and shared-frontier group traversals. This is where network
//! serving meets the batched-query regime the engine was built for:
//! concurrency across sockets is converted into spatial batching.
//!
//! Backpressure: the injector is unbounded, but every entry is covered
//! by its connection's in-flight budget
//! ([`crate::NetConfig::max_inflight`], enforced by the reader), so the
//! queue can never hold more than `connections × max_inflight`
//! requests. Overflowing a budget is a protocol error that tears the
//! offending connection down — a slow *reader of responses* throttles
//! itself, never its neighbors.

use crate::server::Conn;
use lbq_serve::{Engine, QueryReq};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One decoded, validated request waiting for dispatch.
pub(crate) struct Pending {
    /// The connection to route the response back to.
    pub(crate) conn: Arc<Conn>,
    /// Client-chosen correlation id, echoed in the response frame.
    pub(crate) request_id: u64,
    /// The engine request.
    pub(crate) req: QueryReq,
    /// When the reader finished decoding the frame — the start of the
    /// `net-socket-latency` window.
    pub(crate) recv_at: Instant,
}

/// The shared request queue between connection readers and the
/// dispatcher.
pub(crate) struct Injector {
    q: Mutex<VecDeque<Pending>>,
    cvar: Condvar,
    stop: AtomicBool,
}

impl Injector {
    pub(crate) fn new() -> Injector {
        Injector {
            q: Mutex::new(VecDeque::new()),
            cvar: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Enqueues one request and wakes the dispatcher.
    pub(crate) fn push(&self, p: Pending) {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(p);
        drop(q);
        self.cvar.notify_one();
    }

    /// Begins shutdown: the dispatcher drains whatever is queued, then
    /// [`Injector::next_batch`] starts returning `None`.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.cvar.notify_all();
    }

    /// Blocks for the next coalesced batch: waits for a first request,
    /// then keeps collecting until `window` elapses or `max_batch`
    /// requests are in hand. Returns `None` only once stopped *and*
    /// drained, so every accepted request is answered even across a
    /// shutdown.
    pub(crate) fn next_batch(&self, window: Duration, max_batch: usize) -> Option<Vec<Pending>> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !q.is_empty() {
                break;
            }
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            q = self.cvar.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        // A request is in hand: hold the door open for the coalescing
        // window (skipped once stopping — drain as fast as possible).
        let deadline = Instant::now() + window;
        while q.len() < max_batch && !self.stop.load(Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .cvar
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = q.len().min(max_batch);
        Some(q.drain(..take).collect())
    }
}

/// The dispatcher loop: drain coalesced batches, submit each as one
/// engine batch, encode and route the responses. Runs on the server's
/// dedicated session thread until the injector is stopped and drained.
pub(crate) fn dispatch_loop(
    engine: Arc<Engine>,
    injector: Arc<Injector>,
    window: Duration,
    max_batch: usize,
) {
    let batch_hist = lbq_obs::histogram("net-coalesce-batch");
    let latency = lbq_obs::histogram("net-socket-latency");
    let frames_out = lbq_obs::counter("net-frames-out");
    while let Some(batch) = injector.next_batch(window, max_batch) {
        batch_hist.record_value(batch.len() as u64);
        let reqs: Vec<QueryReq> = batch.iter().map(|p| p.req).collect();
        let resps = engine.submit(reqs);
        for (p, resp) in batch.iter().zip(&resps) {
            let mut bytes = Vec::with_capacity(crate::RESPONSE_CAPACITY_HINT);
            if let Err(e) = lbq_proto::encode_query_response(p.request_id, resp, &mut bytes) {
                // Out-of-contract giant response: answer with the error
                // instead of silently dropping the request.
                bytes = lbq_proto::encode_error(p.request_id, e.code, e.detail);
            }
            latency.record_ns(elapsed_ns(p.recv_at));
            if p.conn.send_bytes(bytes) {
                frames_out.add(1);
            }
            p.conn.finish_request();
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
