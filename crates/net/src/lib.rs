//! # lbq-net — the TCP front-end
//!
//! Turns the in-process [`lbq_serve::Engine`] into a network service
//! speaking the `lbq-proto` wire format (normative spec:
//! `docs/PROTOCOL.md`). std-only, zero dependencies, threads all the
//! way down:
//!
//! * an **accept loop** hands each connection a dedicated
//!   reader/writer thread pair (`server` module);
//! * the **session layer** coalesces requests arriving within
//!   [`NetConfig::coalesce_window`] of each other — *across
//!   connections* — into single [`lbq_serve::Engine::submit`] batches,
//!   so socket concurrency feeds the engine's Hilbert tiling and
//!   shared-frontier group traversals (`session` module);
//! * **graceful shutdown** drains every accepted request and flushes
//!   every connection before a single thread is abandoned;
//! * per-connection **limits** (in-flight budget, request payload cap)
//!   turn resource abuse into protocol-error teardown.
//!
//! ## Observability
//!
//! `net-accepts` / `net-frames-in` / `net-frames-out` /
//! `net-protocol-errors` counters, a `net-active-conns` gauge, a
//! `net-coalesce-batch` histogram (how much cross-connection batching
//! actually happens), and a `net-socket-latency` histogram
//! (frame-decoded → response-queued, the server-side slice of a
//! client's round trip) — all in the global [`lbq_obs`] registry, and
//! in every exporter snapshot.
//!
//! # Example
//!
//! ```
//! use lbq_core::LbqServer;
//! use lbq_geom::{Point, Rect};
//! use lbq_net::{NetClient, NetConfig, NetServer};
//! use lbq_rtree::{Item, RTree, RTreeConfig};
//! use lbq_serve::{Engine, EngineConfig, QueryReq};
//! use lbq_proto::Frame;
//! use std::sync::Arc;
//!
//! let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
//! let items: Vec<Item> = (0..100)
//!     .map(|i| Item::new(Point::new((i % 10) as f64, (i / 10) as f64), i))
//!     .collect();
//! let engine = Arc::new(Engine::new(
//!     Arc::new(LbqServer::new(RTree::bulk_load(items, RTreeConfig::tiny()), universe)),
//!     EngineConfig::default(),
//! ));
//! let mut server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! client.send_query(7, &QueryReq::knn(Point::new(4.2, 5.1), 3)).unwrap();
//! match client.recv().unwrap() {
//!     Frame::KnnResponse(resp) => {
//!         assert_eq!(resp.request_id, 7);
//!         assert_eq!(resp.body.result.len(), 3);
//!         assert!(resp.body.validity.contains(Point::new(4.2, 5.1)));
//!     }
//!     other => panic!("unexpected frame {other:?}"),
//! }
//! server.shutdown();
//! ```

mod client;
mod server;
mod session;

pub use client::NetClient;
pub use server::NetServer;

use std::time::Duration;

/// Capacity hint for freshly-encoded response frames (a typical kNN
/// response with a handful of influence pairs).
pub(crate) const RESPONSE_CAPACITY_HINT: usize = 512;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// How long the session layer holds a batch open after its first
    /// request, collecting concurrently-arriving requests from all
    /// connections into one engine submit. Longer windows coalesce
    /// more (better tiling, fewer submits) at the price of added
    /// latency on the *first* request of each batch.
    pub coalesce_window: Duration,
    /// Hard cap on a coalesced batch (the window closes early when
    /// reached).
    pub max_batch: usize,
    /// Per-connection in-flight request budget; exceeding it is a
    /// protocol error that tears the connection down
    /// ([`lbq_proto::ErrorCode::TooManyInFlight`]).
    pub max_inflight: usize,
    /// Payload cap applied to incoming frames
    /// ([`lbq_proto::DEFAULT_SERVER_MAX_PAYLOAD`] by default; request
    /// frames are ≤ 40 bytes, the headroom is for skippable future
    /// frame types).
    pub max_request_payload: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            coalesce_window: Duration::from_micros(200),
            max_batch: 512,
            max_inflight: 1024,
            max_request_payload: lbq_proto::DEFAULT_SERVER_MAX_PAYLOAD,
        }
    }
}
