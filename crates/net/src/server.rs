//! The TCP server: accept loop, per-connection reader/writer split,
//! and teardown/shutdown choreography.
//!
//! Every connection owns exactly two threads:
//!
//! * the **reader** decodes length-prefixed frames from the socket,
//!   validates them, and injects requests into the session layer
//!   ([`crate::session`]); protocol errors are answered with an error
//!   frame and — when fatal ([`lbq_proto::ErrorCode::is_fatal`]) —
//!   tear the connection down;
//! * the **writer** drains the connection's outbound queue and owns
//!   the socket's write half; marking the connection *closing* makes
//!   the writer flush what is queued and then shut the socket down, so
//!   an error frame always reaches the peer before the FIN.
//!
//! A clean client EOF (peer finished sending) does **not** drop
//! in-flight requests: the connection lingers until its last response
//! is queued, then closes — the natural client pattern "pipeline
//! everything, `shutdown(Write)`, read all responses" works.

use crate::session::{dispatch_loop, Injector, Pending};
use crate::NetConfig;
use lbq_proto::{
    decode_frame, encode_error, request_query, validate_request, Decoded, ErrorCode, Frame,
};
use lbq_serve::Engine;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Read-buffer chunk size of a connection reader.
const READ_CHUNK: usize = 16 * 1024;

/// One accepted connection: the socket plus the outbound queue shared
/// between its reader, its writer, and the dispatcher.
pub(crate) struct Conn {
    stream: TcpStream,
    out: Mutex<OutQueue>,
    cvar: Condvar,
    /// Requests decoded but not yet answered (budget:
    /// [`NetConfig::max_inflight`]).
    inflight: AtomicUsize,
    /// The peer sent a clean EOF: close once `inflight` drains to 0.
    eof: AtomicBool,
}

struct OutQueue {
    queue: VecDeque<Vec<u8>>,
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            out: Mutex::new(OutQueue {
                queue: VecDeque::new(),
                closing: false,
            }),
            cvar: Condvar::new(),
            inflight: AtomicUsize::new(0),
            eof: AtomicBool::new(false),
        }
    }

    /// Queues `bytes` for the writer. Returns `false` (dropping the
    /// frame) when the connection is already closing.
    pub(crate) fn send_bytes(&self, bytes: Vec<u8>) -> bool {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.closing {
            return false;
        }
        out.queue.push_back(bytes);
        drop(out);
        self.cvar.notify_one();
        true
    }

    /// Marks the connection closing: the writer flushes the queue and
    /// shuts the socket down. Idempotent.
    pub(crate) fn close(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        out.closing = true;
        drop(out);
        self.cvar.notify_all();
    }

    /// Called by the dispatcher once a request's response is queued
    /// (or dropped): returns the in-flight budget slot, and completes a
    /// lingering clean-EOF close when this was the last outstanding
    /// request.
    pub(crate) fn finish_request(&self) {
        let left = self.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        if left == 0 && self.eof.load(Ordering::Acquire) {
            self.close();
        }
    }
}

/// Everything the accept, reader, writer and dispatcher threads share.
struct Shared {
    cfg: NetConfig,
    stop: AtomicBool,
    injector: Arc<Injector>,
    /// Live and finished connections; joined at shutdown. Bounded by
    /// the process's connection count (entries are not reaped early —
    /// the fleet scale here is tens of connections, not thousands of
    /// churned ones).
    registry: Mutex<Vec<ConnEntry>>,
}

struct ConnEntry {
    conn: Arc<Conn>,
    reader: Option<std::thread::JoinHandle<()>>,
    writer: Option<std::thread::JoinHandle<()>>,
}

/// A running TCP front-end over an [`Engine`]. Binding spawns the
/// accept loop and the session dispatcher; [`NetServer::shutdown`]
/// (also run on drop) stops accepting, drains every in-flight request,
/// flushes every connection, and joins all threads.
///
/// See the crate docs for a usage example.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts serving `engine` with `cfg`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        lbq_obs::snapshot_field(
            "net-config-coalesce-us",
            u64::try_from(cfg.coalesce_window.as_micros()).unwrap_or(u64::MAX),
        );
        lbq_obs::snapshot_field("net-config-max-batch", cfg.max_batch as u64);
        let shared = Arc::new(Shared {
            cfg,
            stop: AtomicBool::new(false),
            injector: Arc::new(Injector::new()),
            registry: Mutex::new(Vec::new()),
        });
        let dispatcher = {
            let engine = Arc::clone(&engine);
            let injector = Arc::clone(&shared.injector);
            let window = cfg.coalesce_window;
            let max_batch = cfg.max_batch;
            std::thread::Builder::new()
                .name("lbq-net-session".into())
                .spawn(move || dispatch_loop(engine, injector, window, max_batch))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lbq-net-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        Ok(NetServer {
            addr,
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, stop the readers, drain every
    /// injected request through the engine, flush every connection's
    /// outbound queue, join every thread. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Stop the readers: a socket read-shutdown makes their blocking
        // read return 0. Responses already in flight are unaffected.
        let mut registry = {
            let mut g = self
                .shared
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for entry in &registry {
            let _ = entry.conn.stream.shutdown(Shutdown::Read);
        }
        for entry in &mut registry {
            if let Some(h) = entry.reader.take() {
                let _ = h.join();
            }
        }
        // Drain the session layer: the dispatcher answers everything
        // still queued, then exits.
        self.shared.injector.stop();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Flush and close every connection.
        for entry in &mut registry {
            entry.conn.close();
            if let Some(h) = entry.writer.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let accepts = lbq_obs::counter("net-accepts");
    let active = lbq_obs::gauge("net-active-conns");
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else {
            continue; // transient accept error
        };
        // Frames are small and latency-sensitive; never Nagle them.
        let _ = stream.set_nodelay(true);
        let Ok(wstream) = stream.try_clone() else {
            continue;
        };
        accepts.add(1);
        active.add(1);
        let conn = Arc::new(Conn::new(stream));
        let reader = {
            let conn = Arc::clone(&conn);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lbq-net-reader".into())
                .spawn(move || reader_loop(conn, shared))
        };
        let writer = {
            let conn = Arc::clone(&conn);
            let active = active.clone();
            std::thread::Builder::new()
                .name("lbq-net-writer".into())
                .spawn(move || writer_loop(conn, wstream, active))
        };
        match (reader, writer) {
            (Ok(r), Ok(w)) => {
                let mut g = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
                g.push(ConnEntry {
                    conn,
                    reader: Some(r),
                    writer: Some(w),
                });
            }
            (r, w) => {
                // Could not staff the connection: close it and reap
                // whichever thread did start.
                conn.close();
                let _ = conn.stream.shutdown(Shutdown::Both);
                if let Ok(h) = r {
                    let _ = h.join();
                }
                if let Ok(h) = w {
                    let _ = h.join();
                }
                active.add(-1);
            }
        }
    }
}

/// The writer half: drains the outbound queue onto the socket; once the
/// connection is closing and the queue is empty, shuts the socket down.
/// Owns the active-connection gauge decrement (runs exactly once per
/// connection).
fn writer_loop(conn: Arc<Conn>, mut stream: TcpStream, active: lbq_obs::Gauge) {
    loop {
        let next = {
            let mut out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(b) = out.queue.pop_front() {
                    break Some(b);
                }
                if out.closing {
                    break None;
                }
                out = conn.cvar.wait(out).unwrap_or_else(|e| e.into_inner());
            }
        };
        match next {
            Some(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    conn.close();
                    break;
                }
            }
            None => break,
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    active.add(-1);
}

/// The reader half: buffered frame decoding, validation, and injection.
fn reader_loop(conn: Arc<Conn>, shared: Arc<Shared>) {
    let frames_in = lbq_obs::counter("net-frames-in");
    let proto_errors = lbq_obs::counter("net-protocol-errors");
    let mut stream = match conn.stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            conn.close();
            return;
        }
    };
    let mut buf: Vec<u8> = Vec::with_capacity(READ_CHUNK);
    let mut chunk = [0u8; READ_CHUNK];
    'conn: loop {
        // Decode every complete frame currently buffered.
        let mut consumed = 0;
        loop {
            match decode_frame(&buf[consumed..], shared.cfg.max_request_payload) {
                Ok(Decoded::Frame { frame, consumed: n }) => {
                    consumed += n;
                    frames_in.add(1);
                    if !handle_frame(&conn, &shared, frame, &proto_errors) {
                        break 'conn; // fatal: teardown (error frame already queued)
                    }
                }
                Ok(Decoded::Unknown {
                    frame_type,
                    request_id,
                    consumed: n,
                }) => {
                    // Forward compatibility: skip the frame, tell the
                    // peer, keep the connection.
                    consumed += n;
                    frames_in.add(1);
                    proto_errors.add(1);
                    conn.send_bytes(encode_error(
                        request_id,
                        ErrorCode::UnknownFrameType,
                        format!("frame type 0x{frame_type:02x} unknown to this v1 server"),
                    ));
                }
                Ok(Decoded::Incomplete { .. }) => break,
                Err(e) => {
                    // Framing is broken: report and tear down.
                    proto_errors.add(1);
                    conn.send_bytes(encode_error(0, e.code, e.detail));
                    break 'conn;
                }
            }
        }
        buf.drain(..consumed);
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Clean EOF: answer what is in flight, then close.
                conn.eof.store(true, Ordering::Release);
                if conn.inflight.load(Ordering::Acquire) == 0 {
                    conn.close();
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break 'conn,
        }
    }
    conn.close();
}

/// Handles one decoded frame on the server side. Returns `false` when
/// the connection must be torn down.
fn handle_frame(
    conn: &Arc<Conn>,
    shared: &Arc<Shared>,
    frame: Frame,
    proto_errors: &lbq_obs::Counter,
) -> bool {
    if let Err(e) = validate_request(&frame) {
        proto_errors.add(1);
        conn.send_bytes(encode_error(frame.request_id(), e.code, e.detail.clone()));
        return !e.code.is_fatal();
    }
    let Some((request_id, req)) = request_query(&frame) else {
        // Unreachable: validate_request only accepts request frames.
        return true;
    };
    let inflight = conn.inflight.fetch_add(1, Ordering::AcqRel) + 1;
    if inflight > shared.cfg.max_inflight {
        conn.inflight.fetch_sub(1, Ordering::AcqRel);
        proto_errors.add(1);
        conn.send_bytes(encode_error(
            request_id,
            ErrorCode::TooManyInFlight,
            format!(
                "connection exceeded its in-flight budget of {}",
                shared.cfg.max_inflight
            ),
        ));
        return false;
    }
    shared.injector.push(Pending {
        conn: Arc::clone(conn),
        request_id,
        req,
        recv_at: Instant::now(),
    });
    true
}
