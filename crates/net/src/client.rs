//! A small blocking client for the wire protocol — what the loopback
//! fleet, the tests, and any out-of-process tool speak to the server
//! with. One client wraps one TCP connection; requests can be
//! pipelined (send many, then receive many) and are correlated by
//! `request_id`, not by ordering.

use lbq_proto::{
    decode_frame, encode_frame, query_request, Decoded, Frame, DEFAULT_CLIENT_MAX_PAYLOAD,
};
use lbq_serve::QueryReq;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
    max_payload: u32,
}

impl NetClient {
    /// Connects to a server (Nagle disabled — frames are small and
    /// latency-sensitive).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            buf: Vec::with_capacity(4096),
            max_payload: DEFAULT_CLIENT_MAX_PAYLOAD,
        })
    }

    /// Replaces the response payload cap
    /// ([`DEFAULT_CLIENT_MAX_PAYLOAD`] by default).
    pub fn with_max_payload(mut self, max_payload: u32) -> NetClient {
        self.max_payload = max_payload;
        self
    }

    /// Bounds how long [`NetClient::recv`] blocks (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one engine request under a client-chosen correlation id.
    pub fn send_query(&mut self, request_id: u64, req: &QueryReq) -> std::io::Result<()> {
        self.send_frame(&query_request(request_id, req))
    }

    /// Encodes and sends one frame.
    pub fn send_frame(&mut self, frame: &Frame) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(64);
        encode_frame(frame, &mut bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&bytes)
    }

    /// Sends raw bytes verbatim — the adversarial tests' way of putting
    /// malformed frames on the wire.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-closes the sending direction: the server answers everything
    /// in flight, then closes. The pipelined-fleet pattern is
    /// `send × n` → `shutdown_write` → `recv × n`.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// Receives the next frame.
    pub fn recv(&mut self) -> std::io::Result<Frame> {
        Ok(self.recv_raw()?.0)
    }

    /// Receives the next frame together with its exact wire bytes —
    /// the currency of the byte-identical assertions. Unknown frame
    /// types (from a future server) are skipped, per the
    /// forward-compatibility rules.
    pub fn recv_raw(&mut self) -> std::io::Result<(Frame, Vec<u8>)> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf, self.max_payload) {
                Ok(Decoded::Frame { frame, consumed }) => {
                    let raw = self.buf[..consumed].to_vec();
                    self.buf.drain(..consumed);
                    return Ok((frame, raw));
                }
                Ok(Decoded::Unknown { consumed, .. }) => {
                    self.buf.drain(..consumed);
                }
                Ok(Decoded::Incomplete { .. }) => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame (or before a frame arrived)",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
        }
    }
}
