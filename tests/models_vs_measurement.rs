//! Statistical integration tests: the Section 5 analytical models must
//! track measurement (these are miniature versions of the paper's
//! Figs. 22/29 "actual vs estimated" comparisons, with fixed seeds and
//! loose tolerances).

use lbq_bench::figures::{build_tree, run_nn_workload, run_window_workload};
use lbq_core::analysis;
use lbq_data::{paper_query_points, uniform_unit, window_queries_frac};
use lbq_hist::Minskew;

#[test]
fn nn_area_model_tracks_measurement() {
    for n in [10_000usize, 50_000] {
        let data = uniform_unit(n, 1);
        let tree = build_tree(&data);
        let queries: Vec<_> = paper_query_points(&data, 2).into_iter().take(150).collect();
        let st = run_nn_workload(&tree, data.universe, &queries, 1);
        let est = analysis::nn_validity_area(n as f64, 1);
        let ratio = st.area / est;
        assert!(
            (0.6..1.6).contains(&ratio),
            "n={n}: measured {} vs model {est} (ratio {ratio})",
            st.area
        );
    }
}

#[test]
fn nn_area_model_tracks_k_scaling() {
    let n = 20_000usize;
    let data = uniform_unit(n, 3);
    let tree = build_tree(&data);
    let queries: Vec<_> = paper_query_points(&data, 4).into_iter().take(600).collect();
    let a1 = run_nn_workload(&tree, data.universe, &queries, 1).area;
    for k in [3usize, 10] {
        let ak = run_nn_workload(&tree, data.universe, &queries, k).area;
        let measured = a1 / ak;
        let model =
            analysis::nn_validity_area(n as f64, 1) / analysis::nn_validity_area(n as f64, k);
        let ratio = measured / model;
        assert!(
            (0.6..1.7).contains(&ratio),
            "k={k}: measured shrink {measured:.2} vs model {model:.2}"
        );
    }
}

#[test]
fn window_area_model_tracks_measurement() {
    let n = 50_000usize;
    let data = uniform_unit(n, 5);
    let tree = build_tree(&data);
    for frac in [0.001, 0.01] {
        let windows = window_queries_frac(&data, 150, frac, 6);
        let st = run_window_workload(&tree, data.universe, &windows);
        let q = frac.sqrt();
        let est = analysis::window_validity_area(n as f64, q, q);
        let ratio = st.area / est;
        assert!(
            (0.4..2.2).contains(&ratio),
            "qs={frac}: measured {} vs model {est} (ratio {ratio})",
            st.area
        );
    }
}

#[test]
fn inner_extents_formula_tracks_measurement() {
    // eq. (5-7): dist_x = 1/(N·q_y). Measure the inner rectangle's mean
    // half-extents directly.
    let n = 30_000usize;
    let data = uniform_unit(n, 9);
    let tree = build_tree(&data);
    let frac = 0.01;
    // eq. (5-7) models interior windows; boundary-straddling ones have
    // artificially long empty sweeps, so keep windows fully inside.
    let inner_universe = lbq_geom::Rect::new(0.1, 0.1, 0.9, 0.9);
    let windows: Vec<_> = window_queries_frac(&data, 400, frac, 7)
        .into_iter()
        .filter(|w| inner_universe.contains_rect(w))
        .collect();
    let mut half_x = Vec::new();
    for w in &windows {
        let c = w.center();
        let (hx, hy) = (w.width() / 2.0, w.height() / 2.0);
        let resp = lbq_core::window_with_validity(&tree, c, hx, hy, data.universe);
        if resp.result.is_empty() {
            continue;
        }
        half_x.push((resp.validity.inner_rect.width() / 2.0).max(0.0));
    }
    let measured: f64 = half_x.iter().sum::<f64>() / half_x.len() as f64;
    let (dx, _) = analysis::window_inner_extents(n as f64, frac.sqrt(), frac.sqrt());
    let ratio = measured / dx;
    assert!(
        (0.4..2.5).contains(&ratio),
        "inner extent: measured {measured} vs eq.5-7 {dx} (ratio {ratio})"
    );
}

#[test]
fn rtree_cost_model_tracks_measurement() {
    let n = 100_000usize;
    let data = uniform_unit(n, 13);
    let tree = build_tree(&data);
    let model = analysis::RtreeCostModel::paper(n as f64);
    for frac in [0.001f64, 0.01] {
        let windows = window_queries_frac(&data, 100, frac, 8);
        let (_, s) = tree.with_stats(|t| {
            for w in &windows {
                let _ = t.window(w);
            }
        });
        let measured = s.node_accesses as f64 / windows.len() as f64;
        let q = frac.sqrt();
        let est = model.window_na(q, q);
        let ratio = measured / est;
        assert!(
            (0.5..2.0).contains(&ratio),
            "qs={frac}: measured NA {measured} vs model {est}"
        );
    }
}

#[test]
fn minskew_correction_beats_global_n_on_skewed_data() {
    // On clustered data the Minskew-corrected NN-area estimate must be
    // closer to measurement than the naive global-N estimate,
    // *per query* in log space (means are dominated by the few huge
    // cells of background queries; per-query accuracy is what the
    // histogram buys and what the paper's "estimations are accurate"
    // claim is about).
    let data = lbq_data::na_like_sized(30_000, 7);
    let tree = build_tree(&data);
    let hist = Minskew::paper(&data.points(), data.universe);
    let queries: Vec<_> = paper_query_points(&data, 3).into_iter().take(120).collect();

    let naive_est = analysis::nn_validity_area(data.len() as f64, 1) * data.universe.area();
    let mut err_naive = 0.0;
    let mut err_hist = 0.0;
    let mut counted = 0;
    for &q in &queries {
        let inner: Vec<_> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = lbq_core::retrieve_influence_set(&tree, q, &inner, data.universe);
        let actual = validity.area();
        if actual <= 0.0 {
            continue;
        }
        let n_eff = hist.effective_cardinality_nn(q, 1).max(1.0);
        let hist_est = analysis::nn_validity_area(n_eff, 1) * data.universe.area();
        err_naive += (naive_est.ln() - actual.ln()).abs();
        err_hist += (hist_est.ln() - actual.ln()).abs();
        counted += 1;
    }
    assert!(counted > 80);
    assert!(
        err_hist < err_naive,
        "per-query log error: hist {:.3} should beat naive {:.3}",
        err_hist / counted as f64,
        err_naive / counted as f64
    );
}
