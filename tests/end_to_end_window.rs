//! End-to-end integration for location-based window queries on
//! clustered data, including the disk-model cost story.

use lbq_core::LbqServer;
use lbq_data::{na_like_sized, window_queries};
use lbq_geom::{Point, Rect};
use lbq_rtree::{RTree, RTreeConfig};

#[test]
fn window_results_and_regions_exact_on_clustered_data() {
    let data = na_like_sized(12_000, 5);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    );
    let windows = window_queries(&data, 25, 2_000.0 * 1e6, 3); // 2000 km²
    for w in &windows {
        let c = w.center();
        let (hx, hy) = (w.width() / 2.0, w.height() / 2.0);
        let resp = server.window_with_validity(c, hx, hy);
        // Result equals brute force.
        let mut got: Vec<u64> = resp.result.iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = data
            .items
            .iter()
            .filter(|i| w.contains(i.point))
            .map(|i| i.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Probe around the window: inside the region the result is
        // frozen.
        let want_set: std::collections::BTreeSet<u64> = want.into_iter().collect();
        for dx in -3..=3 {
            for dy in -3..=3 {
                let p = Point::new(c.x + dx as f64 * hx * 0.4, c.y + dy as f64 * hy * 0.4);
                if resp.validity.contains(p) {
                    let w2 = Rect::centered(p, hx, hy);
                    let set: std::collections::BTreeSet<u64> = data
                        .items
                        .iter()
                        .filter(|i| w2.contains(i.point))
                        .map(|i| i.id)
                        .collect();
                    assert_eq!(set, want_set, "drifted at {p}");
                }
            }
        }
    }
}

#[test]
fn buffer_absorbs_the_second_window_query() {
    // The paper's Fig. 34 story, end to end: with a 10% LRU buffer the
    // outer-candidate query faults almost nothing because the result
    // query already paged the neighborhood in.
    let data = na_like_sized(60_000, 8);
    let tree = RTree::bulk_load(data.items.clone(), RTreeConfig::paper());
    tree.set_buffer_fraction(0.1);
    let windows = window_queries(&data, 60, 1_000.0 * 1e6, 4);
    let mut na2_total = 0.0;
    let mut pa2_total = 0.0;
    let mut counted = 0;
    for w in &windows {
        let c = w.center();
        let (hx, hy) = (w.width() / 2.0, w.height() / 2.0);
        let result = tree.window(w);
        if result.is_empty() {
            continue;
        }
        let (_, s2) = tree.with_stats(|t| {
            lbq_core::window::window_validity_from_result(t, c, hx, hy, data.universe, result)
        });
        na2_total += s2.node_accesses as f64;
        pa2_total += s2.page_faults as f64;
        counted += 1;
    }
    assert!(counted > 30, "workload mostly non-empty");
    assert!(
        pa2_total < na2_total * 0.35,
        "second query should be mostly buffered: PA {pa2_total} of NA {na2_total}"
    );
}

#[test]
fn degenerate_universe_edge_windows() {
    // Windows hugging the universe corners: regions clip to the
    // universe, checks stay sound.
    let data = na_like_sized(5_000, 2);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    );
    let u = data.universe;
    for c in [
        Point::new(u.xmin + 1.0, u.ymin + 1.0),
        Point::new(u.xmax - 1.0, u.ymax - 1.0),
        Point::new(u.xmin + 1.0, u.ymax - 1.0),
    ] {
        let resp = server.window_with_validity(c, 50_000.0, 50_000.0);
        assert!(resp.validity.inner_rect.xmin >= u.xmin - 1e-6);
        assert!(resp.validity.inner_rect.xmax <= u.xmax + 1e-6);
        // lbq-check: allow(float-eq) — degenerate regions report an exact 0.0
        assert!(resp.validity.contains(c) || resp.validity.area() == 0.0);
    }
}
