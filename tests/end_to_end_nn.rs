//! End-to-end integration: dataset generation → R\*-tree server →
//! location-based NN queries → client-side validation, cross-checked
//! against the independent Voronoi substrate.

use lbq_core::{baselines::Zl01Server, LbqServer};
use lbq_data::{gr_like_sized, paper_query_points, uniform_unit};
use lbq_geom::{Point, Rect};
use lbq_rtree::{RTree, RTreeConfig};
use lbq_voronoi::VoronoiDiagram;

#[test]
fn uniform_pipeline_region_equals_voronoi_cell() {
    let data = uniform_unit(400, 11);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::tiny()),
        data.universe,
    );
    let vd = VoronoiDiagram::build(&data.points(), data.universe);
    for q in paper_query_points(&data, 5).into_iter().take(40) {
        let resp = server.knn_with_validity(q, 1);
        let cell = vd.cell(resp.result[0].id as usize);
        assert!(
            (resp.validity.area() - cell.area()).abs() <= 1e-9 * cell.area().max(1e-12),
            "at {q}: region {} vs cell {}",
            resp.validity.area(),
            cell.area()
        );
    }
}

#[test]
fn clustered_pipeline_validity_is_exact_under_motion() {
    // GR-like street data; replay a client walking through a cluster and
    // assert the cached kNN answer is exact at every step while the
    // validity region says so (and wrong the step after it says no).
    let data = gr_like_sized(3_000, 9);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    );
    for k in [1usize, 4] {
        let start = data.items[100].point;
        let mut pos = start;
        let dir = lbq_geom::Vec2::from_angle(1.1);
        let mut resp = server.knn_with_validity(pos, k);
        let mut requeries = 0;
        for _ in 0..400 {
            pos = data.universe.clamp_point(pos + dir * 40.0);
            if !resp.validity.contains(pos) {
                resp = server.knn_with_validity(pos, k);
                requeries += 1;
            }
            let truth: Vec<u64> = server
                .tree()
                .knn(pos, k)
                .into_iter()
                .map(|(i, _)| i.id)
                .collect();
            let mut cached: Vec<u64> = resp.result.iter().map(|i| i.id).collect();
            cached.sort_unstable();
            let mut truth_sorted = truth.clone();
            truth_sorted.sort_unstable();
            assert_eq!(cached, truth_sorted, "k={k} at {pos}");
        }
        assert!(requeries < 400, "caching must save something (k={k})");
    }
}

#[test]
fn zl01_baseline_consistent_with_lbq_regions() {
    // For 1-NN both systems describe the same Voronoi cell; ZL01's safe
    // disk must lie inside LBQ's region.
    let data = uniform_unit(250, 3);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::tiny()),
        data.universe,
    );
    let zl = Zl01Server::build(&data.items, data.universe);
    for q in paper_query_points(&data, 8).into_iter().take(30) {
        let lbq = server.knn_with_validity(q, 1);
        let z = zl.query(q).unwrap();
        assert_eq!(lbq.result[0].id, z.nn.id, "at {q}");
        for i in 0..12 {
            let theta = i as f64 * std::f64::consts::TAU / 12.0;
            let p = q + lbq_geom::Vec2::from_angle(theta) * (z.safe_distance * 0.99);
            if data.universe.contains(p) {
                assert!(
                    lbq.validity.contains(p),
                    "ZL01 disk point {p} outside LBQ region at {q}"
                );
            }
        }
    }
}

#[test]
fn influence_set_is_the_wire_format() {
    // A client given only (result, influence pairs) reconstructs the
    // same validity decisions as the server-side polygon.
    let data = uniform_unit(300, 21);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::tiny()),
        data.universe,
    );
    let q = Point::new(0.37, 0.61);
    let resp = server.knn_with_validity(q, 3);
    let poly = &resp.validity.polygon;
    for i in 0..40 {
        for j in 0..40 {
            let p = Point::new(i as f64 / 40.0 + 0.012, j as f64 / 40.0 + 0.008);
            let by_pairs = resp.validity.contains(p);
            // Clear of the boundary the two decisions must agree.
            let d_in = poly.contains_eps(p, -1e-7);
            let d_out = !poly.contains_eps(p, 1e-7);
            if d_in {
                assert!(by_pairs, "pairs reject interior point {p}");
            }
            if d_out && Rect::new(0.0, 0.0, 1.0, 1.0).contains(p) {
                assert!(!by_pairs, "pairs accept exterior point {p}");
            }
        }
    }
}
