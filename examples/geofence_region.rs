//! Circular region monitoring — the paper's §7 future-work extension:
//! "find all restaurants within a 5 km radius" as the client drives,
//! with arc-bounded validity regions instead of polygons.
//!
//! Also demonstrates the second §7 item, **delta transmission**: when
//! the client finally re-queries, the server ships only the result
//! changes.
//!
//! ```text
//! cargo run --release -p lbq-core --example geofence_region
//! ```

use lbq_core::client::delta_payload;
use lbq_core::LbqServer;
use lbq_data::na_like_sized;
use lbq_geom::Vec2;
use lbq_obs::ProfileTable;
use lbq_rtree::{RTree, RTreeConfig};

fn main() {
    // `LBQ_TRACE=text|jsonl` streams every span/event to stderr.
    lbq_obs::install_from_env();
    let data = na_like_sized(50_000, 17);
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    );

    // Start on a populated place; watch everything within 10 km.
    let mut pos = data.items[4_321].point;
    let radius = 10_000.0;
    let dir = Vec2::from_angle(2.1);
    let step = 300.0;

    let mut resp = server.region_with_validity(pos, radius);
    println!(
        "watching {} places within {:.0} km; safe disk {:.2} km, {} influence objects",
        resp.result.len(),
        radius / 1000.0,
        resp.validity.safe_radius / 1000.0,
        resp.validity.influence_count()
    );

    let (mut queries, mut free, mut disk_hits, mut shipped) = (1usize, 0usize, 0usize, 0usize);
    let mut naive_shipped = 0usize;
    shipped += resp.result.len() + resp.validity.influence_count();
    for _ in 0..1_000 {
        pos = data.universe.clamp_point(pos + dir * step);
        naive_shipped += server.region_with_validity(pos, radius).result.len();
        if resp.validity.contains_conservative(pos) {
            disk_hits += 1;
            free += 1;
        } else if resp.validity.contains(pos) {
            free += 1;
        } else {
            let fresh = server.region_with_validity(pos, radius);
            // §7 delta transmission: ship only the membership changes.
            let delta = delta_payload(&resp.result, &fresh.result);
            shipped += delta + fresh.validity.influence_count();
            queries += 1;
            resp = fresh;
        }
    }

    println!("after 1000 steps ({:.0} km):", 1_000.0 * step / 1_000.0);
    let mut profile = ProfileTable::new(
        "geofence region (1000 steps)",
        &["quantity", "delta client", "naive client"],
    );
    profile
        .row(&[
            "server queries".to_string(),
            queries.to_string(),
            1_000.to_string(),
        ])
        .row(&[
            "objects shipped".to_string(),
            shipped.to_string(),
            naive_shipped.to_string(),
        ])
        .row(&["free checks".to_string(), free.to_string(), "0".to_string()])
        .row(&[
            "o(1) safe-disk hits".to_string(),
            disk_hits.to_string(),
            "-".to_string(),
        ]);
    profile.print();
    println!(
        "→ region validity trades bytes (influence sets) for an {:.0}% cut in \
         round-trips — and round-trips are what drain a mobile link",
        (1.0 - queries as f64 / 1_000.0) * 100.0
    );
}
