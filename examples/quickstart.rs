//! Quickstart: build a location-based query server, ask for the nearest
//! restaurant, and see how long the answer stays valid as you move.
//!
//! ```text
//! cargo run --release -p lbq-core --example quickstart
//! ```

use lbq_core::LbqServer;
use lbq_geom::{Point, Rect};
use lbq_obs::ProfileTable;
use lbq_rtree::{Item, RTree, RTreeConfig};

fn main() {
    // `LBQ_TRACE=text|jsonl` streams every span/event to stderr.
    lbq_obs::install_from_env();
    // A 10 km × 10 km city with a handful of restaurants (meters).
    let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let restaurants = [
        ("Noodle Bar", Point::new(5_000.0, 5_000.0)),
        ("Pierogi Palace", Point::new(1_200.0, 4_800.0)),
        ("Taco Stand", Point::new(8_700.0, 5_300.0)),
        ("Curry Corner", Point::new(5_100.0, 900.0)),
        ("Dumpling House", Point::new(4_900.0, 9_200.0)),
        ("Burger Bus", Point::new(7_800.0, 8_100.0)),
        ("Falafel Cart", Point::new(2_300.0, 1_700.0)),
    ];
    let items: Vec<Item> = restaurants
        .iter()
        .enumerate()
        .map(|(i, (_, p))| Item::new(*p, i as u64))
        .collect();
    let server = LbqServer::new(RTree::bulk_load(items, RTreeConfig::tiny()), universe);

    // The client asks: "nearest restaurant to me?"
    let me = Point::new(5_300.0, 4_700.0);
    let resp = server.knn_with_validity(me, 1);
    let nn = resp.result[0];
    println!("you are at {me}");
    println!(
        "nearest restaurant: {} at {} ({:.0} m away)",
        restaurants[nn.id as usize].0,
        nn.point,
        me.dist(nn.point)
    );

    // The server also returned a validity region: the Voronoi cell of
    // the answer, encoded as |S_inf| influence objects.
    println!(
        "validity region: {} edges, {:.2} km², influence set of {} objects",
        resp.validity.edge_count(),
        resp.validity.area() / 1e6,
        resp.validity.influence_count()
    );
    println!(
        "(the server issued {} TPNN queries to build it)",
        resp.tpnn_queries
    );

    // Walk east and check locally — no server contact — until the
    // cached answer expires.
    println!("\nwalking east, checking the cached answer locally:");
    let mut pos = me;
    let mut revalidations = 0;
    loop {
        pos = Point::new(pos.x + 250.0, pos.y);
        let inside = resp.validity.contains(pos);
        revalidations += 1;
        println!(
            "  at x={:>6.0}: cached answer {}",
            pos.x,
            if inside {
                "still valid ✓"
            } else {
                "EXPIRED — re-query"
            }
        );
        if !inside {
            break;
        }
    }
    let fresh = server.knn_with_validity(pos, 1);
    println!(
        "\nafter {} free checks, one real query: nearest is now {}",
        revalidations - 1,
        restaurants[fresh.result[0].id as usize].0
    );

    println!();
    let mut profile = ProfileTable::new("quickstart", &["quantity", "value"]);
    profile
        .row(&[
            "region edges".to_string(),
            resp.validity.edge_count().to_string(),
        ])
        .row(&[
            "influence objects".to_string(),
            resp.validity.influence_count().to_string(),
        ])
        .row(&["tpnn queries".to_string(), resp.tpnn_queries.to_string()])
        .row(&[
            "free local checks".to_string(),
            (revalidations - 1).to_string(),
        ]);
    profile.print();
    println!();
    lbq_obs::print_metrics("global counters");
}
