//! A taxi drives across a synthetic North-America-like dataset of
//! populated places while continuously monitoring its k nearest
//! neighbors. Compares every strategy from the paper's Related Work on
//! the same trajectory: server queries, network payload, client checks.
//!
//! ```text
//! cargo run --release -p lbq-core --example moving_client
//! ```

use lbq_core::baselines::Zl01Server;
use lbq_core::client::{random_waypoint, simulate_nn, NnStrategy};
use lbq_data::na_like_sized;
use lbq_geom::Point;
use lbq_obs::{fmt_ns, ProfileTable};
use lbq_rtree::{RTree, RTreeConfig};

fn main() {
    // `LBQ_TRACE=text|jsonl` streams every span/event to stderr.
    lbq_obs::install_from_env();
    // 30k populated places on a 7000 km square continent.
    let data = na_like_sized(30_000, 42);
    println!("dataset: {} ({} points)", data.name, data.len());
    let tree = RTree::bulk_load(data.items.clone(), RTreeConfig::paper());
    let zl01 = Zl01Server::build(&data.items, data.universe);

    // A 2000-step drive; each step is 500 m.
    let traj = random_waypoint(
        data.universe,
        Point::new(3_500_000.0, 3_500_000.0),
        2_000,
        500.0,
        7,
    );
    println!(
        "trajectory: {} steps × 500 m = {:.0} km\n",
        traj.len() - 1,
        (traj.len() - 1) as f64 * 0.5
    );

    let k = 1;
    println!("continuous {k}-NN monitoring (every strategy verified exact at every step):\n");
    let mut table = ProfileTable::new(
        "nn strategies (k=1)",
        &[
            "strategy", "queries", "na", "pa", "shipped", "checks", "p50", "p95", "p99", "savings",
        ],
    );
    for (name, strat) in [
        ("naive (re-query)", NnStrategy::Naive),
        ("LBQ (this paper)", NnStrategy::Lbq),
        ("SR01 (m=6)", NnStrategy::Sr01 { m: 6 }),
        ("SR01 (m=20)", NnStrategy::Sr01 { m: 20 }),
        ("ZL01 (Voronoi)", NnStrategy::Zl01),
        ("TP (velocity)", NnStrategy::Tp),
    ] {
        let r = simulate_nn(&tree, data.universe, &traj, k, strat, Some(&zl01));
        table.row(&[
            name.to_string(),
            r.server_queries.to_string(),
            r.na.to_string(),
            r.pa.to_string(),
            r.objects_shipped.to_string(),
            r.validity_checks.to_string(),
            fmt_ns(r.latency.p50_ns),
            fmt_ns(r.latency.p95_ns),
            fmt_ns(r.latency.p99_ns),
            format!("{:.1}%", r.savings_ratio() * 100.0),
        ]);
    }
    table.print();
    println!();
    // Workspace-global counters fed by the rtree probes and the client
    // cache (na/pa here include the harness's verification queries).
    lbq_obs::print_metrics("global counters");

    println!(
        "\nLBQ's validity region is exact (the full order-k Voronoi cell), so it \
         re-queries only when the answer really changes; SR01 and ZL01 hold \
         conservative regions and give up earlier, TP expires on every turn."
    );
}
