//! A map viewport ("all points of interest within my 4 km × 3 km
//! screen") sliding along a street network. Demonstrates location-based
//! window queries: the inner validity rectangle, the Minkowski holes of
//! outer points, and the conservative rectangle a thin client can check
//! in constant time.
//!
//! ```text
//! cargo run --release -p lbq-core --example city_window
//! ```

use lbq_core::LbqServer;
use lbq_data::gr_like_sized;
use lbq_geom::Vec2;
use lbq_obs::ProfileTable;
use lbq_rtree::{RTree, RTreeConfig};

fn main() {
    // `LBQ_TRACE=text|jsonl` streams every span/event to stderr.
    lbq_obs::install_from_env();
    // A Greece-like street network: 23,268 segment centroids on an
    // 800 km square (the paper's GR dataset, synthesized).
    let data = gr_like_sized(23_268, 3);
    println!("dataset: {} points along synthetic streets", data.len());
    let server = LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    );

    // Start the viewport on a street point so the screen isn't empty.
    let start = data.items[data.len() / 2].point;
    let (hx, hy) = (2_000.0, 1_500.0); // 4 km × 3 km screen
    let mut pos = start;
    let dir = Vec2::from_angle(0.4);
    let step = 120.0; // meters per pan

    let mut cached = server.window_with_validity(pos, hx, hy);
    let mut server_queries = 1usize;
    let mut free_pans = 0usize;
    let mut conservative_hits = 0usize;
    println!(
        "initial viewport at {pos}: {} POIs, validity region {:.3} km² \
         (inner rect {:.3} km², {} inner + {} outer influence objects)\n",
        cached.result.len(),
        cached.validity.area() / 1e6,
        cached.validity.inner_rect.area() / 1e6,
        cached.validity.inner_influence.len(),
        cached.validity.outer_influence.len(),
    );

    for pan in 1..=400 {
        pos = data.universe.clamp_point(pos + dir * step);
        // Cheap test first (4 comparisons), exact test second.
        if cached.validity.contains_conservative(pos) {
            conservative_hits += 1;
            free_pans += 1;
        } else if cached.validity.contains(pos) {
            free_pans += 1;
        } else {
            cached = server.window_with_validity(pos, hx, hy);
            server_queries += 1;
            if server_queries <= 6 {
                println!(
                    "pan {pan:>3}: re-query — {} POIs now, new region {:.3} km²",
                    cached.result.len(),
                    cached.validity.area() / 1e6
                );
            }
        }
    }

    println!();
    let mut profile = ProfileTable::new("city window (400 pans)", &["quantity", "value"]);
    profile
        .row(&["server queries".to_string(), server_queries.to_string()])
        .row(&["free pans".to_string(), free_pans.to_string()])
        .row(&[
            "o(1) conservative hits".to_string(),
            conservative_hits.to_string(),
        ])
        .row(&[
            "savings vs naive".to_string(),
            format!("{:.1}%", (1.0 - server_queries as f64 / 400.0) * 100.0),
        ]);
    profile.print();
    println!(
        "\nthe conservative rectangle answers most pans in 4 comparisons; the \
         exact region catches the rest; only real result changes hit the server"
    );
}
