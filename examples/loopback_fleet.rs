//! A fleet of TCP clients against a loopback `lbq-net` server.
//!
//! The network sibling of `moving_fleet`, in two phases:
//!
//! 1. **Byte-identity.** A NA-like dataset is served over real
//!    sockets with every answer-reuse tier disabled, a handful of
//!    client threads pipeline kNN and window requests, and every
//!    response is checked **byte-for-byte** against the in-process
//!    encoding of the baseline answer — the serving stack's
//!    byte-identical contract, exercised end to end.
//! 2. **Hotspot tiers.** The same dataset behind a second engine with
//!    the region cache and the hot-tile Voronoi fast path enabled,
//!    under skewed kNN traffic. Each response frame's wire flags name
//!    the serving tier (tree / cache / hot-voronoi); tree-tier
//!    responses must still be byte-identical, while cache and hot
//!    answers are anchored (correct but re-focused), so they are
//!    checked for result-set equality against the fresh baseline.
//!
//! ```text
//! cargo run --release -p lbq-net --example loopback_fleet
//! ```

use lbq_core::LbqServer;
use lbq_data::na_like_sized;
use lbq_geom::Point;
use lbq_net::{NetClient, NetConfig, NetServer};
use lbq_proto::{encode_query_response, Frame};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, Engine, EngineConfig, QueryReq, QueryResp};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: u64 = 8;
const REQUESTS_PER_CLIENT: u64 = 250;
const HOT_REQUESTS_PER_CLIENT: u64 = 400;

fn main() {
    let data = na_like_sized(20_000, 42);
    println!("dataset: {} ({} points)", data.name, data.len());
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    ));
    // Cache and hot tier disabled: every socket response must equal
    // the pure baseline encoding (a hit on either tier anchors its
    // answer at the original query, which is correct but not
    // bit-comparable).
    let engine = Arc::new(Engine::new(
        Arc::clone(&server),
        EngineConfig {
            cache: CacheConfig::disabled(),
            hot: lbq_serve::HotConfig::disabled(),
            ..EngineConfig::default()
        },
    ));
    let mut net =
        NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("bind loopback");
    let addr = net.local_addr();
    println!("serving on {addr} — {CLIENTS} clients × {REQUESTS_PER_CLIENT} pipelined requests\n");

    let start = Instant::now();
    let universe = data.universe;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256ss::seed_from_u64(0xF1EE7 + c);
                let mut client = NetClient::connect(addr).expect("connect");
                let span = (universe.xmax - universe.xmin, universe.ymax - universe.ymin);
                let reqs: Vec<(u64, QueryReq)> = (0..REQUESTS_PER_CLIENT)
                    .map(|i| {
                        let p = Point::new(
                            universe.xmin + rng.gen_f64() * span.0,
                            universe.ymin + rng.gen_f64() * span.1,
                        );
                        let req = if rng.gen_bool(0.5) {
                            QueryReq::knn(p, 1 + rng.gen_index(10))
                        } else {
                            QueryReq::window(
                                p,
                                span.0 * 0.005 * (0.2 + rng.gen_f64()),
                                span.1 * 0.005 * (0.2 + rng.gen_f64()),
                            )
                        };
                        ((c << 32) | i, req)
                    })
                    .collect();
                for (id, req) in &reqs {
                    client.send_query(*id, req).expect("send");
                }
                client.shutdown_write().expect("half-close");
                let mut seen = std::collections::HashMap::new();
                for _ in 0..reqs.len() {
                    let (frame, raw) = client.recv_raw().expect("recv");
                    seen.insert(frame.request_id(), (frame, raw));
                }
                let mut verified = 0u64;
                for (id, req) in &reqs {
                    let (frame, raw) = &seen[id];
                    let query_id = match frame {
                        Frame::KnnResponse(r) => r.query_id,
                        Frame::WindowResponse(r) => r.query_id,
                        other => panic!("unexpected frame {other:?}"),
                    };
                    let resp = QueryResp {
                        answer: Arc::new(answer_on(&server, req)),
                        from_cache: false,
                        tier: lbq_serve::CacheTier::Tree,
                        worker: 0,
                        latency_ns: 0,
                        query_id,
                        stages: Default::default(),
                    };
                    let mut expected = Vec::new();
                    encode_query_response(*id, &resp, &mut expected).expect("encode");
                    assert_eq!(raw, &expected, "byte-identical contract violated");
                    verified += 1;
                }
                verified
            })
        })
        .collect();
    let verified: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let elapsed = start.elapsed();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "{total} requests over TCP in {:.2?} ({:.0} q/s), {verified} responses byte-identical \
         to the in-process encoding\n",
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
    );
    net.shutdown();

    hotspot_phase(&server, data.universe);
    lbq_obs::print_metrics("network serving");
}

/// Phase 2: skewed kNN traffic against the full tiered stack (region
/// cache + hot-tile Voronoi), verified per wire tier.
fn hotspot_phase(server: &Arc<LbqServer>, universe: lbq_geom::Rect) {
    let engine = Arc::new(Engine::new(
        Arc::clone(server),
        EngineConfig {
            // Promote quickly so an example-sized run exercises the
            // hot tier; everything else is the production default.
            hot: lbq_serve::HotConfig {
                promote_after: 32,
                ..lbq_serve::HotConfig::default()
            },
            ..EngineConfig::default()
        },
    ));
    let mut net =
        NetServer::bind("127.0.0.1:0", Arc::clone(&engine), NetConfig::default()).expect("bind");
    let addr = net.local_addr();
    println!("hotspot phase on {addr} — {CLIENTS} clients × {HOT_REQUESTS_PER_CLIENT} kNN requests over 4 hotspots");

    let span = (universe.xmax - universe.xmin, universe.ymax - universe.ymin);
    let centers: Vec<Point> = (0..4)
        .map(|h| {
            let mut rng = Xoshiro256ss::seed_from_u64(0x1107 + h);
            Point::new(
                universe.xmin + (0.2 + 0.6 * rng.gen_f64()) * span.0,
                universe.ymin + (0.2 + 0.6 * rng.gen_f64()) * span.1,
            )
        })
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(server);
            let centers = centers.clone();
            std::thread::spawn(move || {
                let mut rng = Xoshiro256ss::seed_from_u64(0xB07 + c);
                let mut client = NetClient::connect(addr).expect("connect");
                let span = (universe.xmax - universe.xmin, universe.ymax - universe.ymin);
                let reqs: Vec<(u64, QueryReq)> = (0..HOT_REQUESTS_PER_CLIENT)
                    .map(|i| {
                        let center = centers[rng.gen_index(centers.len())];
                        let p = Point::new(
                            center.x + (rng.gen_f64() - 0.5) * span.0 * 0.004,
                            center.y + (rng.gen_f64() - 0.5) * span.1 * 0.004,
                        );
                        ((c << 32) | i, QueryReq::knn(p, 1 + rng.gen_index(3)))
                    })
                    .collect();
                for (id, req) in &reqs {
                    client.send_query(*id, req).expect("send");
                }
                client.shutdown_write().expect("half-close");
                let mut seen = std::collections::HashMap::new();
                for _ in 0..reqs.len() {
                    let (frame, raw) = client.recv_raw().expect("recv");
                    seen.insert(frame.request_id(), (frame, raw));
                }
                // tiers[0] = tree, [1] = cache, [2] = hot-voronoi.
                let mut tiers = [0u64; 3];
                for (id, req) in &reqs {
                    let (frame, raw) = &seen[id];
                    let Frame::KnnResponse(r) = frame else {
                        panic!("unexpected frame {frame:?}");
                    };
                    let fresh = answer_on(&server, req);
                    match r.tier {
                        lbq_proto::CacheTier::Tree => {
                            // Fresh traversal: the full byte-identical
                            // contract holds even with the tiers armed.
                            let resp = QueryResp {
                                answer: Arc::new(fresh),
                                from_cache: false,
                                tier: lbq_serve::CacheTier::Tree,
                                worker: 0,
                                latency_ns: 0,
                                query_id: r.query_id,
                                stages: Default::default(),
                            };
                            let mut expected = Vec::new();
                            encode_query_response(*id, &resp, &mut expected).expect("encode");
                            assert_eq!(raw, &expected, "tree-tier byte contract violated");
                            tiers[0] += 1;
                        }
                        tier => {
                            // Anchored answer: same result set as the
                            // fresh one (Lemma 3.1), different focus.
                            let mut got: Vec<u64> = r.body.result.iter().map(|i| i.id).collect();
                            got.sort_unstable();
                            assert_eq!(
                                got,
                                fresh.result_ids(),
                                "{} answer diverged from fresh baseline",
                                tier.name(),
                            );
                            tiers[if tier == lbq_proto::CacheTier::Cache {
                                1
                            } else {
                                2
                            }] += 1;
                        }
                    }
                }
                tiers
            })
        })
        .collect();
    let mut tiers = [0u64; 3];
    for h in handles {
        let t = h.join().expect("client");
        for (a, b) in tiers.iter_mut().zip(t) {
            *a += b;
        }
    }
    let elapsed = start.elapsed();
    let total = CLIENTS * HOT_REQUESTS_PER_CLIENT;
    println!(
        "{total} hotspot requests in {:.2?} ({:.0} q/s), every answer verified per tier\n",
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
    );
    let mut table =
        lbq_obs::ProfileTable::new("loopback tiers", &["wire tier", "answered", "share"]);
    let pct = |n: u64| format!("{:.1}%", n as f64 / total as f64 * 100.0);
    table.row(&["tree".into(), tiers[0].to_string(), pct(tiers[0])]);
    table.row(&["cache".into(), tiers[1].to_string(), pct(tiers[1])]);
    table.row(&["hot-voronoi".into(), tiers[2].to_string(), pct(tiers[2])]);
    table.print();
    println!();
    let hot = engine.hot_stats();
    println!(
        "hot tier: {} tiles promoted, {} cells materialized, {}/{} probe hits\n",
        hot.promotions,
        hot.cells,
        hot.hits,
        hot.hits + hot.misses,
    );
    net.shutdown();
}
