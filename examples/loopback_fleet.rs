//! A fleet of TCP clients against a loopback `lbq-net` server.
//!
//! The network sibling of `moving_fleet`: a NA-like dataset is served
//! over real sockets, a handful of client threads pipeline kNN and
//! window requests, and every response is checked **byte-for-byte**
//! against the in-process encoding of the baseline answer — the
//! serving stack's byte-identical contract, exercised end to end.
//!
//! ```text
//! cargo run --release -p lbq-net --example loopback_fleet
//! ```

use lbq_core::LbqServer;
use lbq_data::na_like_sized;
use lbq_geom::Point;
use lbq_net::{NetClient, NetConfig, NetServer};
use lbq_proto::{encode_query_response, Frame};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{answer_on, CacheConfig, Engine, EngineConfig, QueryReq, QueryResp};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: u64 = 8;
const REQUESTS_PER_CLIENT: u64 = 250;

fn main() {
    let data = na_like_sized(20_000, 42);
    println!("dataset: {} ({} points)", data.name, data.len());
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    ));
    // Cache disabled: every socket response must equal the pure
    // baseline encoding (cache hits would anchor answers at the
    // original query, which is correct but not bit-comparable).
    let engine = Arc::new(Engine::new(
        Arc::clone(&server),
        EngineConfig {
            cache: CacheConfig::disabled(),
            ..EngineConfig::default()
        },
    ));
    let mut net =
        NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("bind loopback");
    let addr = net.local_addr();
    println!("serving on {addr} — {CLIENTS} clients × {REQUESTS_PER_CLIENT} pipelined requests\n");

    let start = Instant::now();
    let universe = data.universe;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256ss::seed_from_u64(0xF1EE7 + c);
                let mut client = NetClient::connect(addr).expect("connect");
                let span = (universe.xmax - universe.xmin, universe.ymax - universe.ymin);
                let reqs: Vec<(u64, QueryReq)> = (0..REQUESTS_PER_CLIENT)
                    .map(|i| {
                        let p = Point::new(
                            universe.xmin + rng.gen_f64() * span.0,
                            universe.ymin + rng.gen_f64() * span.1,
                        );
                        let req = if rng.gen_bool(0.5) {
                            QueryReq::knn(p, 1 + rng.gen_index(10))
                        } else {
                            QueryReq::window(
                                p,
                                span.0 * 0.005 * (0.2 + rng.gen_f64()),
                                span.1 * 0.005 * (0.2 + rng.gen_f64()),
                            )
                        };
                        ((c << 32) | i, req)
                    })
                    .collect();
                for (id, req) in &reqs {
                    client.send_query(*id, req).expect("send");
                }
                client.shutdown_write().expect("half-close");
                let mut seen = std::collections::HashMap::new();
                for _ in 0..reqs.len() {
                    let (frame, raw) = client.recv_raw().expect("recv");
                    seen.insert(frame.request_id(), (frame, raw));
                }
                let mut verified = 0u64;
                for (id, req) in &reqs {
                    let (frame, raw) = &seen[id];
                    let query_id = match frame {
                        Frame::KnnResponse(r) => r.query_id,
                        Frame::WindowResponse(r) => r.query_id,
                        other => panic!("unexpected frame {other:?}"),
                    };
                    let resp = QueryResp {
                        answer: Arc::new(answer_on(&server, req)),
                        from_cache: false,
                        worker: 0,
                        latency_ns: 0,
                        query_id,
                        stages: Default::default(),
                    };
                    let mut expected = Vec::new();
                    encode_query_response(*id, &resp, &mut expected).expect("encode");
                    assert_eq!(raw, &expected, "byte-identical contract violated");
                    verified += 1;
                }
                verified
            })
        })
        .collect();
    let verified: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let elapsed = start.elapsed();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "{total} requests over TCP in {:.2?} ({:.0} q/s), {verified} responses byte-identical \
         to the in-process encoding\n",
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
    );
    net.shutdown();
    lbq_obs::print_metrics("network serving");
}
