//! A fleet of moving clients against the concurrent batched engine.
//!
//! Hundreds of taxis drive random-waypoint trajectories over a
//! NA-like dataset while continuously monitoring either their k
//! nearest neighbors or a window around themselves. Each simulation
//! tick gathers one batched [`lbq_serve::Engine::submit`] call from
//! every client whose cached validity region no longer contains it —
//! the paper's client-side caching — and the engine's server-side
//! region cache absorbs a further slice of those before they reach the
//! tree.
//!
//! ```text
//! cargo run --release -p lbq-serve --example moving_fleet
//! ```
//!
//! Set `LBQ_OBS_SNAPSHOT=fleet.jsonl,500ms` to arm the flight recorder
//! and stream periodic observability snapshots (stage histograms,
//! hot-tile heatmap, slow-query captures) to `fleet.jsonl` while the
//! fleet runs.

use lbq_core::client::random_waypoint;
use lbq_core::LbqServer;
use lbq_data::na_like_sized;
use lbq_geom::Point;
use lbq_obs::ProfileTable;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_serve::{CacheTier, Engine, EngineConfig, QueryAnswer, QueryReq};
use std::sync::Arc;
use std::time::Instant;

struct Client {
    traj: Vec<Point>,
    kind: ClientKind,
    cached: Option<Arc<QueryAnswer>>,
}

enum ClientKind {
    Knn { k: usize },
    Window { hx: f64, hy: f64 },
}

impl Client {
    fn request_at(&self, pos: Point) -> QueryReq {
        match self.kind {
            ClientKind::Knn { k } => QueryReq::knn(pos, k),
            ClientKind::Window { hx, hy } => QueryReq::window(pos, hx, hy),
        }
    }
}

fn main() {
    lbq_obs::install_from_env();
    let exporter = lbq_obs::install_exporter_from_env();
    let data = na_like_sized(20_000, 42);
    println!("dataset: {} ({} points)", data.name, data.len());
    let server = Arc::new(LbqServer::new(
        RTree::bulk_load(data.items.clone(), RTreeConfig::paper()),
        data.universe,
    ));
    let engine = Engine::new(Arc::clone(&server), EngineConfig::default());
    println!(
        "engine: {} workers, region cache {}\n",
        engine.workers(),
        if engine.cache().is_disabled() {
            "disabled"
        } else {
            "enabled"
        }
    );

    // 240 clients in 40 depots (6 per depot — co-located clients are
    // what the *server-side* cache exists for): half monitor kNN, half
    // a 60 km window; each drives 200 steps of 2 km.
    let fleet = 240;
    let steps = 200;
    let mut clients: Vec<Client> = (0..fleet)
        .map(|c| {
            let depot = data.items[(c % 40) * 97 % data.items.len()].point;
            Client {
                traj: random_waypoint(data.universe, depot, steps, 2_000.0, c as u64),
                kind: if c % 2 == 0 {
                    ClientKind::Knn { k: 1 + c % 2 }
                } else {
                    ClientKind::Window {
                        hx: 30_000.0,
                        hy: 30_000.0,
                    }
                },
                cached: None,
            }
        })
        .collect();

    let mut client_hits = 0u64; // steps answered on the client
    let mut submitted = 0u64; // requests reaching the engine
    let mut hot_hits = 0u64; // answered by the hot-tile Voronoi tier
    let mut cache_hits = 0u64; // answered by the server region cache
    let mut tree_queries = 0u64; // full traversals (solo or grouped)
    let started = Instant::now();
    let stats_before = server.tree().stats();
    for step in 0..=steps {
        // Clients whose cached region still holds answer locally.
        let mut batch = Vec::new();
        let mut owners = Vec::new();
        for (c, client) in clients.iter().enumerate() {
            let pos = client.traj[step];
            match &client.cached {
                Some(ans) if ans.valid_at(pos) => client_hits += 1,
                _ => {
                    batch.push(client.request_at(pos));
                    owners.push(c);
                }
            }
        }
        submitted += batch.len() as u64;
        let resps = engine.submit(batch);
        for (owner, resp) in owners.into_iter().zip(resps) {
            match resp.tier {
                CacheTier::HotVoronoi => hot_hits += 1,
                CacheTier::Cache => cache_hits += 1,
                CacheTier::Tree | CacheTier::TreeGroup => tree_queries += 1,
            }
            clients[owner].cached = Some(resp.answer);
        }
    }
    let elapsed = started.elapsed();
    let tree_cost = server.tree().stats().delta_since(stats_before);

    let total_steps = (fleet * (steps + 1)) as u64;
    let mut table = ProfileTable::new("moving fleet", &["tier", "answered", "share"]);
    let pct = |n: u64| format!("{:.1}%", n as f64 / total_steps as f64 * 100.0);
    table.row(&[
        "client region".into(),
        client_hits.to_string(),
        pct(client_hits),
    ]);
    table.row(&["hot voronoi".into(), hot_hits.to_string(), pct(hot_hits)]);
    table.row(&[
        "server cache".into(),
        cache_hits.to_string(),
        pct(cache_hits),
    ]);
    table.row(&["r-tree".into(), tree_queries.to_string(), pct(tree_queries)]);
    table.row(&["total steps".into(), total_steps.to_string(), String::new()]);
    table.print();
    println!();

    let per_query = |v: u64| {
        if tree_queries == 0 {
            0.0
        } else {
            v as f64 / tree_queries as f64
        }
    };
    println!(
        "engine: {submitted} requests in {:.2?} ({:.0} q/s), NA/query {:.1}, PA/query {:.1}\n",
        elapsed,
        submitted as f64 / elapsed.as_secs_f64(),
        per_query(tree_cost.node_accesses),
        per_query(tree_cost.page_faults),
    );
    engine.profile_table().print();
    println!();
    lbq_obs::print_metrics("global counters");
    let hot = engine.hot_stats();
    println!(
        "\nValidity regions answer {:.1}% of all steps before the tree is touched \
         (client-side {:.1}%, hot voronoi {:.1}%, server cache {:.1}%).",
        (client_hits + hot_hits + cache_hits) as f64 / total_steps as f64 * 100.0,
        client_hits as f64 / total_steps as f64 * 100.0,
        hot_hits as f64 / total_steps as f64 * 100.0,
        cache_hits as f64 / total_steps as f64 * 100.0,
    );
    println!(
        "hot tier: {} tiles promoted ({} demoted), {} cells materialized, \
         {}/{} probe hits",
        hot.promotions,
        hot.demotions,
        hot.cells,
        hot.hits,
        hot.misses + hot.hits,
    );
    if let Some(exporter) = exporter {
        if let Some(rec) = lbq_obs::recorder() {
            let s = rec.stats();
            println!(
                "\nflight recorder: {} records, {} slow captures (threshold {})",
                s.total,
                s.slow_captured,
                lbq_obs::fmt_ns(s.threshold_ns),
            );
        }
        // Dropping the exporter flushes one final snapshot block.
        drop(exporter);
    }
}
