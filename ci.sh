#!/bin/sh
# Workspace gate: formatting, release build, project lints, tests.
# Run from the repository root. Any failing step aborts the run.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== lbq-check (json, diffed against committed baseline)"
# Exit codes: 0 clean, 1 fresh findings beyond the baseline, 2 the
# analyzer itself failed (parse/IO/CLI error) — distinguish them so a
# broken analyzer is never mistaken for a lint regression.
rc=0
cargo run --release -q -p lbq-check -- --format json --baseline lbq-check.baseline.json || rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: lbq-check itself failed (parse/IO error) — fix the analyzer or the source it chokes on" >&2
    exit 2
elif [ "$rc" -ne 0 ]; then
    echo "ci: lbq-check found violations beyond lbq-check.baseline.json (listed above)" >&2
    exit 1
fi

echo "== miri (optional: runs when the component is installed)"
if rustup component list --installed 2>/dev/null | grep -q "^miri"; then
    cargo miri test -p lbq-geom -q
else
    echo "ci: miri not installed; skipping (rustup component add miri)"
fi

echo "== thread sanitizer (optional: needs nightly + rust-src)"
if rustc --version | grep -q nightly \
    && rustup component list --installed 2>/dev/null | grep -q "^rust-src"; then
    RUSTFLAGS="-Zsanitizer=thread" cargo test -Zbuild-std -q -p lbq-serve --test stress \
        --target "$(rustc -vV | sed -n 's/^host: //p')"
else
    echo "ci: not a nightly toolchain with rust-src; skipping TSan stage"
fi

echo "== cargo test"
cargo test --workspace -q

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== serve stress tests"
cargo test --release -q -p lbq-serve --test stress

echo "== serve_sweep smoke"
out="$(cargo run --release -q -p lbq-bench --bin serve_sweep -- --quick)"
echo "$out" | grep -q "== lbq-obs profile ==" || {
    echo "ci: serve_sweep --quick did not print a profile table" >&2
    exit 1
}

echo "== examples (text tracing + profile tables)"
for ex in quickstart moving_client city_window geofence_region; do
    out="$(LBQ_TRACE=text cargo run --release -q -p lbq-core --example "$ex" 2>/dev/null)"
    echo "$out" | grep -q "== lbq-obs profile ==" || {
        echo "ci: example $ex did not print a profile table" >&2
        exit 1
    }
done
out="$(cargo run --release -q -p lbq-serve --example moving_fleet 2>/dev/null)"
echo "$out" | grep -q "== lbq-obs profile ==" || {
    echo "ci: example moving_fleet did not print a profile table" >&2
    exit 1
}

echo "== pr4 bench smoke (zero-allocation steady state)"
cargo run --release -q -p lbq-bench --bin pr4_bench -- --quick >/dev/null

echo "== pr4 bench artifact check"
cargo run --release -q -p lbq-bench --bin pr4_bench -- --check BENCH_PR4.json

echo "== pr5 bench smoke (tiled dispatch + packed-arena equivalence)"
cargo run --release -q -p lbq-bench --bin pr5_bench -- --quick >/dev/null

echo "== pr5 bench artifact check"
cargo run --release -q -p lbq-bench --bin pr5_bench -- --check BENCH_PR5.json

echo "== pr7 bench smoke (observability overhead micro-benches)"
cargo run --release -q -p lbq-bench --bin pr7_bench -- --quick >/dev/null

echo "== pr7 bench artifact check"
cargo run --release -q -p lbq-bench --bin pr7_bench -- --check BENCH_PR7.json

echo "== pr8 bench smoke (loopback TCP serving)"
cargo run --release -q -p lbq-bench --bin pr8_bench -- --quick >/dev/null

echo "== pr8 bench artifact check"
cargo run --release -q -p lbq-bench --bin pr8_bench -- --check BENCH_PR8.json

echo "== pr9 bench smoke (hot-tile Voronoi fast path)"
cargo run --release -q -p lbq-bench --bin pr9_bench -- --quick >/dev/null

echo "== pr9 bench artifact check"
cargo run --release -q -p lbq-bench --bin pr9_bench -- --check BENCH_PR9.json

echo "== bench trend (speedup trajectory across all reports)"
cargo run --release -q -p lbq-bench --bin bench_trend

echo "== loopback_fleet (byte-identical network serving + hotspot tiers)"
out="$(cargo run --release -q -p lbq-net --example loopback_fleet 2>/dev/null)"
echo "$out" | grep -q "byte-identical" || {
    echo "ci: loopback_fleet did not report byte-identical responses" >&2
    exit 1
}
echo "$out" | grep -q "hot-voronoi" || {
    echo "ci: loopback_fleet hotspot phase did not report the hot-voronoi tier" >&2
    exit 1
}
echo "$out" | grep -q "== lbq-obs profile ==" || {
    echo "ci: loopback_fleet did not print a profile table" >&2
    exit 1
}

echo "== serve hot-tier equivalence tests"
cargo test --release -q -p lbq-serve --test hot

echo "== pr7 serve smoke (exporter schema + slow-query capture)"
# A live engine under the snapshot exporter: bit-identical results
# obs-on vs obs-off, an injected pathological query must be captured,
# and every exported JSONL line must validate against the v1 schema.
snap="$(mktemp -u).jsonl"
cargo run --release -q -p lbq-bench --bin pr7_bench -- --serve-smoke "$snap" >/dev/null
rm -f "$snap"

echo "== moving_fleet under the snapshot exporter"
snap="$(mktemp -u).jsonl"
LBQ_OBS_SNAPSHOT="$snap,200ms" cargo run --release -q -p lbq-serve --example moving_fleet >/dev/null 2>&1
grep -q '"type":"snapshot"' "$snap" && grep -q '"type":"snapshot-end"' "$snap" || {
    echo "ci: moving_fleet exported no complete snapshot block to $snap" >&2
    exit 1
}
grep -q '"type":"heatmap"' "$snap" || {
    echo "ci: moving_fleet snapshots carry no heatmap line" >&2
    exit 1
}
rm -f "$snap"

echo "== moving_client jsonl trace"
trace="$(mktemp)"
LBQ_TRACE=jsonl cargo run --release -q -p lbq-core --example moving_client 2>"$trace" >/dev/null
for name in rtree-tpnn nn-influence-set tpnn-iteration client-cache-hit client-cache-miss; do
    grep -q "\"name\":\"$name\"" "$trace" || {
        echo "ci: jsonl trace is missing \"$name\" records" >&2
        rm -f "$trace"
        exit 1
    }
done
rm -f "$trace"

echo "ci: ok"
