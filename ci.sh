#!/bin/sh
# Workspace gate: formatting, release build, project lints, tests.
# Run from the repository root. Any failing step aborts the run.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== lbq-check"
cargo run --release -q -p lbq-check

echo "== cargo test"
cargo test --workspace -q

echo "ci: ok"
